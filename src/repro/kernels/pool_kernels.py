"""Pooling kernels: MaxPool, AveragePool, GlobalAveragePool.

Each spatial pooling op ships a vectorised sliding-window implementation and
a loop reference (the testing oracle). ONNX semantics are honoured in full:
``ceil_mode``, asymmetric pads, and AveragePool's ``count_include_pad``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.ir.node import Node
from repro.ir.shape_inference import resolve_conv_pads
from repro.kernels.context import ExecutionContext
from repro.kernels.registry import kernel


def _pool_geometry(node: Node, x: np.ndarray):
    """Resolve kernel/strides/pads/dilations and output dims (incl. ceil_mode)."""
    kernel_shape = node.attrs.get_ints("kernel_shape")
    strides = node.attrs.get_ints("strides", kernel_shape)
    dilations = node.attrs.get_ints("dilations", (1, 1))
    in_h, in_w = x.shape[2], x.shape[3]
    pads = resolve_conv_pads(node, (in_h, in_w), kernel_shape, strides, dilations)
    ceil_mode = node.attrs.get_int("ceil_mode", 0)

    def out_dim(size: int, k: int, s: int, pad: int, d: int) -> int:
        effective = d * (k - 1) + 1
        raw = (size + pad - effective) / s + 1
        return int(math.ceil(raw)) if ceil_mode else int(math.floor(raw))

    out_h = out_dim(in_h, kernel_shape[0], strides[0], pads[0] + pads[2], dilations[0])
    out_w = out_dim(in_w, kernel_shape[1], strides[1], pads[1] + pads[3], dilations[1])
    # ceil_mode may demand more input extent than pads provide; the extra
    # rows/cols are padding (never counted by count_include_pad=0).
    need_h = (out_h - 1) * strides[0] + dilations[0] * (kernel_shape[0] - 1) + 1
    need_w = (out_w - 1) * strides[1] + dilations[1] * (kernel_shape[1] - 1) + 1
    extra_h = max(0, need_h - (in_h + pads[0] + pads[2]))
    extra_w = max(0, need_w - (in_w + pads[1] + pads[3]))
    full_pads = (pads[0], pads[1], pads[2] + extra_h, pads[3] + extra_w)
    return kernel_shape, strides, dilations, full_pads, out_h, out_w


def _padded(x: np.ndarray, pads, value: float) -> np.ndarray:
    top, left, bottom, right = pads
    if not any(pads):
        return x
    return np.pad(x, ((0, 0), (0, 0), (top, bottom), (left, right)),
                  mode="constant", constant_values=value)


def _windows(x: np.ndarray, kernel, strides, dilations, out_h, out_w) -> np.ndarray:
    kh, kw = kernel
    dh, dw = dilations
    view = np.lib.stride_tricks.sliding_window_view(
        x, (dh * (kh - 1) + 1, dw * (kw - 1) + 1), axis=(2, 3))
    return view[:, :, ::strides[0], ::strides[1], ::dh, ::dw][:, :, :out_h, :out_w]


@kernel("MaxPool", "windows", priority=90)
def maxpool_windows(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """Sliding-window MaxPool; padding contributes -inf (never selected)."""
    x = inputs[0]
    kernel_shape, strides, dilations, pads, out_h, out_w = _pool_geometry(node, x)
    lowest = -np.inf if np.issubdtype(x.dtype, np.floating) else np.iinfo(x.dtype).min
    padded = _padded(x, pads, lowest)
    view = _windows(padded, kernel_shape, strides, dilations, out_h, out_w)
    return [np.ascontiguousarray(view.max(axis=(4, 5)))]


@kernel("MaxPool", "offsets", priority=100)
def maxpool_offsets(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """Offset-accumulation MaxPool: one vectorised max per kernel tap.

    KH*KW strided maxima instead of a reduction over a 6-D strided view —
    an order of magnitude faster on the large early-layer pools.
    """
    x = inputs[0]
    kernel_shape, strides, dilations, pads, out_h, out_w = _pool_geometry(node, x)
    lowest = -np.inf if np.issubdtype(x.dtype, np.floating) else np.iinfo(x.dtype).min
    padded = _padded(x, pads, lowest)
    kh, kw = kernel_shape
    sh, sw = strides
    dh, dw = dilations
    out = np.full((x.shape[0], x.shape[1], out_h, out_w), lowest, dtype=x.dtype)
    for ky in range(kh):
        for kx in range(kw):
            y0, x0 = ky * dh, kx * dw
            patch = padded[:, :, y0:y0 + sh * out_h:sh, x0:x0 + sw * out_w:sw]
            np.maximum(out, patch, out=out)
    return [out]


@kernel("MaxPool", "loops", priority=-50, experimental=True)
def maxpool_loops(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """Loop-nest MaxPool reference."""
    x = inputs[0]
    kernel_shape, strides, dilations, pads, out_h, out_w = _pool_geometry(node, x)
    lowest = -np.inf if np.issubdtype(x.dtype, np.floating) else np.iinfo(x.dtype).min
    padded = _padded(x, pads, lowest)
    batch, channels = x.shape[0], x.shape[1]
    out = np.empty((batch, channels, out_h, out_w), dtype=x.dtype)
    kh, kw = kernel_shape
    for n in range(batch):
        for c in range(channels):
            for oy in range(out_h):
                for ox in range(out_w):
                    best = lowest
                    for ky in range(kh):
                        for kx in range(kw):
                            value = padded[
                                n, c,
                                oy * strides[0] + ky * dilations[0],
                                ox * strides[1] + kx * dilations[1]]
                            if value > best:
                                best = value
                    out[n, c, oy, ox] = best
    return [out]


@kernel("AveragePool", "windows", priority=90)
def avgpool_windows(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """Sliding-window AveragePool honouring ``count_include_pad``."""
    x = inputs[0]
    kernel_shape, strides, dilations, pads, out_h, out_w = _pool_geometry(node, x)
    include_pad = node.attrs.get_int("count_include_pad", 0)
    padded = _padded(x, pads, 0.0)
    view = _windows(padded, kernel_shape, strides, dilations, out_h, out_w)
    sums = view.sum(axis=(4, 5))
    if include_pad:
        counts = float(kernel_shape[0] * kernel_shape[1])
        return [np.ascontiguousarray(sums / counts).astype(x.dtype, copy=False)]
    ones = _padded(np.ones_like(x, dtype=np.float32), pads, 0.0)
    counts = _windows(ones, kernel_shape, strides, dilations, out_h, out_w).sum(axis=(4, 5))
    counts = np.maximum(counts, 1.0)  # fully-padded windows divide by 1
    return [np.ascontiguousarray(sums / counts).astype(x.dtype, copy=False)]


@kernel("AveragePool", "offsets", priority=100)
def avgpool_offsets(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """Offset-accumulation AveragePool: one vectorised add per kernel tap."""
    x = inputs[0]
    kernel_shape, strides, dilations, pads, out_h, out_w = _pool_geometry(node, x)
    include_pad = node.attrs.get_int("count_include_pad", 0)
    padded = _padded(x, pads, 0.0)
    kh, kw = kernel_shape
    sh, sw = strides
    dh, dw = dilations

    def accumulate(source: np.ndarray) -> np.ndarray:
        total = np.zeros(
            (source.shape[0], source.shape[1], out_h, out_w), dtype=np.float32)
        for ky in range(kh):
            for kx in range(kw):
                y0, x0 = ky * dh, kx * dw
                total += source[:, :, y0:y0 + sh * out_h:sh,
                                x0:x0 + sw * out_w:sw]
        return total

    sums = accumulate(padded)
    if include_pad:
        counts = float(kh * kw)
        return [(sums / counts).astype(x.dtype, copy=False)]

    def reciprocal_counts() -> np.ndarray:
        # Valid-element counts depend only on geometry: compute once per
        # node and cache the reciprocal so the steady state is one multiply.
        ones = _padded(np.ones(x.shape[1:], dtype=np.float32)[np.newaxis],
                       pads, 0.0)
        counts = np.maximum(accumulate(ones), 1.0)
        return (1.0 / counts).astype(np.float32)

    inverse = ctx.cached(
        ("avgpool_counts", node.name, x.shape, pads), reciprocal_counts)
    return [(sums * inverse).astype(x.dtype, copy=False)]


@kernel("AveragePool", "loops", priority=-50, experimental=True)
def avgpool_loops(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """Loop-nest AveragePool reference."""
    x = inputs[0]
    kernel_shape, strides, dilations, pads, out_h, out_w = _pool_geometry(node, x)
    include_pad = node.attrs.get_int("count_include_pad", 0)
    padded = _padded(x, pads, 0.0)
    in_h = x.shape[2] + pads[0]  # first padded row index past real data
    in_w = x.shape[3] + pads[1]
    batch, channels = x.shape[0], x.shape[1]
    out = np.empty((batch, channels, out_h, out_w), dtype=x.dtype)
    kh, kw = kernel_shape
    for n in range(batch):
        for c in range(channels):
            for oy in range(out_h):
                for ox in range(out_w):
                    acc = 0.0
                    count = 0
                    for ky in range(kh):
                        for kx in range(kw):
                            iy = oy * strides[0] + ky * dilations[0]
                            ix = ox * strides[1] + kx * dilations[1]
                            acc += float(padded[n, c, iy, ix])
                            inside = (pads[0] <= iy < in_h) and (pads[1] <= ix < in_w)
                            count += 1 if inside else 0
                    divisor = kh * kw if include_pad else max(count, 1)
                    out[n, c, oy, ox] = acc / divisor
    return [out]


@kernel("GlobalAveragePool", "default", priority=100)
def global_average_pool(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """Mean over all spatial positions, keeping (N, C, 1, 1)."""
    x = inputs[0]
    return [x.mean(axis=(2, 3), keepdims=True).astype(x.dtype, copy=False)]
