"""Shared helpers for the convolution/pooling kernel family.

Everything here is layout-fixed: activations NCHW, weights OIHW, exactly as
in the paper's C++ implementation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ir.node import Node
from repro.ir.shape_inference import resolve_conv_pads


@dataclasses.dataclass(frozen=True)
class ConvParams:
    """Fully resolved convolution geometry for one node."""

    batch: int
    in_channels: int
    in_h: int
    in_w: int
    out_channels: int
    kernel: tuple[int, int]
    strides: tuple[int, int]
    pads: tuple[int, int, int, int]  # top, left, bottom, right
    dilations: tuple[int, int]
    group: int
    out_h: int
    out_w: int

    @property
    def is_depthwise(self) -> bool:
        return self.group == self.in_channels and self.group == self.out_channels

    @property
    def is_pointwise(self) -> bool:
        return self.kernel == (1, 1) and self.group == 1

    @property
    def macs(self) -> int:
        """Multiply-accumulate count for this convolution."""
        per_output = (self.in_channels // self.group) * self.kernel[0] * self.kernel[1]
        outputs = self.batch * self.out_channels * self.out_h * self.out_w
        return per_output * outputs


def conv_params(node: Node, x_shape: tuple[int, ...], w_shape: tuple[int, ...]) -> ConvParams:
    """Resolve a Conv node's attributes against concrete input shapes."""
    batch, in_channels, in_h, in_w = x_shape
    out_channels, _, kh, kw = w_shape
    kernel = node.attrs.get_ints("kernel_shape", (kh, kw))
    strides = node.attrs.get_ints("strides", (1, 1))
    dilations = node.attrs.get_ints("dilations", (1, 1))
    group = node.attrs.get_int("group", 1)
    onnx_pads = resolve_conv_pads(node, (in_h, in_w), kernel, strides, dilations)
    pads = (onnx_pads[0], onnx_pads[1], onnx_pads[2], onnx_pads[3])
    eff_h = dilations[0] * (kernel[0] - 1) + 1
    eff_w = dilations[1] * (kernel[1] - 1) + 1
    out_h = (in_h + pads[0] + pads[2] - eff_h) // strides[0] + 1
    out_w = (in_w + pads[1] + pads[3] - eff_w) // strides[1] + 1
    return ConvParams(
        batch=batch, in_channels=in_channels, in_h=in_h, in_w=in_w,
        out_channels=out_channels, kernel=(kernel[0], kernel[1]),
        strides=(strides[0], strides[1]), pads=pads,
        dilations=(dilations[0], dilations[1]), group=group,
        out_h=out_h, out_w=out_w,
    )


def pad_input(x: np.ndarray, pads: tuple[int, int, int, int],
              value: float = 0.0) -> np.ndarray:
    """Zero-pad an NCHW activation spatially. No copy when pads are all 0."""
    top, left, bottom, right = pads
    if not any(pads):
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (top, bottom), (left, right)),
        mode="constant", constant_values=value,
    )


def im2col(x: np.ndarray, params: ConvParams) -> np.ndarray:
    """Lower convolution input to a matrix (the GEMM convolution setup).

    Args:
        x: NCHW input, already padded.

    Returns:
        Array of shape ``(batch, C*KH*KW, OH*OW)``: one column per output
        pixel, one row per (channel, kernel-offset) pair. Built with
        ``sliding_window_view`` so the only copy is the final reshape —
        this is the "optimised im2col" used by the Orpheus GEMM backend.
    """
    kh, kw = params.kernel
    sh, sw = params.strides
    dh, dw = params.dilations
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (dh * (kh - 1) + 1, dw * (kw - 1) + 1), axis=(2, 3),
    )  # (N, C, OH', OW', EKH, EKW) where OH'/OW' are stride-1 output dims
    windows = windows[:, :, ::sh, ::sw, ::dh, ::dw]  # apply stride + dilation
    batch, channels, out_h, out_w, _, _ = windows.shape
    # (N, C, KH, KW, OH, OW) -> (N, C*KH*KW, OH*OW)
    columns = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        batch, channels * kh * kw, out_h * out_w)
    return np.ascontiguousarray(columns)


def im2col_loops(x: np.ndarray, params: ConvParams) -> np.ndarray:
    """Loop-built im2col (the DarkNet-style implementation).

    Semantically identical to :func:`im2col` but materialises the matrix
    with an explicit Python loop over kernel offsets, paying one strided
    copy per (ky, kx) — the memory-traffic profile of a C ``im2col`` that
    was not cache-blocked.
    """
    kh, kw = params.kernel
    sh, sw = params.strides
    dh, dw = params.dilations
    batch, channels = x.shape[0], x.shape[1]
    out_h, out_w = params.out_h, params.out_w
    columns = np.empty(
        (batch, channels, kh, kw, out_h, out_w), dtype=x.dtype)
    for ky in range(kh):
        for kx in range(kw):
            y0 = ky * dh
            x0 = kx * dw
            patch = x[:, :, y0:y0 + sh * out_h:sh, x0:x0 + sw * out_w:sw]
            columns[:, :, ky, kx] = patch
    return columns.reshape(batch, channels * kh * kw, out_h * out_w)


def pool_windows(x: np.ndarray, kernel: tuple[int, int],
                 strides: tuple[int, int],
                 dilations: tuple[int, int] = (1, 1)) -> np.ndarray:
    """Sliding pooling windows over a padded NCHW input.

    Returns shape ``(N, C, OH, OW, KH, KW)`` (a view, no copy).
    """
    kh, kw = kernel
    dh, dw = dilations
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (dh * (kh - 1) + 1, dw * (kw - 1) + 1), axis=(2, 3))
    return windows[:, :, ::strides[0], ::strides[1], ::dh, ::dw]


def add_conv_bias(out: np.ndarray, bias: np.ndarray | None) -> np.ndarray:
    """Add a per-output-channel bias to an NCHW activation, in place."""
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out


def finalize_conv(out: np.ndarray, bias: np.ndarray | None, node: Node) -> np.ndarray:
    """Conv epilogue: bias add plus any fused activation.

    The fuse-activations graph pass records a following Relu/Clip in the
    Conv node's ``activation`` attribute; applying it here, while the output
    tile is still hot, is the entire point of the fusion.
    """
    add_conv_bias(out, bias)
    activation = node.attrs.get_str("activation", "")
    if not activation:
        return out
    if activation == "relu":
        np.maximum(out, 0, out=out)
        return out
    if activation == "relu6":
        np.clip(out, 0, 6, out=out)
        return out
    raise ValueError(f"unknown fused activation {activation!r}")
