"""Reductions, argmax, LayerNorm/GroupNorm, Gelu, GlobalMaxPool.

The post-2020 operator additions a maintained edge runtime grows: attention
-era normalisations (LayerNormalization opset 17, GroupNormalization opset
18, Gelu opset 20) and the reduction family beyond ReduceMean.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ir.node import Node
from repro.ir.shape_inference import (
    InferenceContext,
    ValueType,
    register_shape_fn,
)
from repro.kernels.context import ExecutionContext
from repro.kernels.registry import kernel
from repro.tensor.dtype import DType

# ---------------------------------------------------------------------------
# shape inference
# ---------------------------------------------------------------------------


def _reduce_shape(node: Node, inputs: list[ValueType],
                  ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    rank = len(shape)
    axes = node.attrs.get_ints("axes", tuple(range(rank)))
    axes = tuple(sorted(axis % rank for axis in axes))
    keepdims = node.attrs.get_int("keepdims", 1)
    if keepdims:
        out = tuple(1 if axis in axes else dim
                    for axis, dim in enumerate(shape))
    else:
        out = tuple(dim for axis, dim in enumerate(shape)
                    if axis not in axes)
    return [(out, dtype)]


for _op in ("ReduceSum", "ReduceMax", "ReduceMin"):
    register_shape_fn(_op)(_reduce_shape)


@register_shape_fn("ArgMax")
def _argmax_shape(node: Node, inputs: list[ValueType],
                  ctx: InferenceContext) -> list[ValueType]:
    (shape, _dtype) = inputs[0]
    rank = len(shape)
    axis = node.attrs.get_int("axis", 0) % max(rank, 1)
    keepdims = node.attrs.get_int("keepdims", 1)
    if keepdims:
        out = tuple(1 if index == axis else dim
                    for index, dim in enumerate(shape))
    else:
        out = tuple(dim for index, dim in enumerate(shape) if index != axis)
    return [(out, DType.INT64)]


@register_shape_fn("GlobalMaxPool")
def _gmp_shape(node: Node, inputs: list[ValueType],
               ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    return [((shape[0], shape[1], 1, 1), dtype)]


@register_shape_fn("LayerNormalization")
def _layernorm_shape(node: Node, inputs: list[ValueType],
                     ctx: InferenceContext) -> list[ValueType]:
    return [inputs[0]]


@register_shape_fn("GroupNormalization")
def _groupnorm_shape(node: Node, inputs: list[ValueType],
                     ctx: InferenceContext) -> list[ValueType]:
    return [inputs[0]]


register_shape_fn("Gelu")(lambda node, inputs, ctx: [inputs[0]])

# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------


def _axes_of(node: Node, x: np.ndarray) -> tuple[int, ...]:
    axes = node.attrs.get_ints("axes", tuple(range(x.ndim)))
    return tuple(axis % x.ndim for axis in axes)


@kernel("ReduceSum", "default", priority=100)
def reduce_sum(inputs: Sequence[np.ndarray], node: Node,
               ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    keepdims = bool(node.attrs.get_int("keepdims", 1))
    return [x.sum(axis=_axes_of(node, x), keepdims=keepdims).astype(
        x.dtype, copy=False)]


@kernel("ReduceMax", "default", priority=100)
def reduce_max(inputs: Sequence[np.ndarray], node: Node,
               ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    keepdims = bool(node.attrs.get_int("keepdims", 1))
    return [x.max(axis=_axes_of(node, x), keepdims=keepdims)]


@kernel("ReduceMin", "default", priority=100)
def reduce_min(inputs: Sequence[np.ndarray], node: Node,
               ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    keepdims = bool(node.attrs.get_int("keepdims", 1))
    return [x.min(axis=_axes_of(node, x), keepdims=keepdims)]


@kernel("ArgMax", "default", priority=100)
def argmax(inputs: Sequence[np.ndarray], node: Node,
           ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    axis = node.attrs.get_int("axis", 0)
    keepdims = node.attrs.get_int("keepdims", 1)
    out = np.argmax(x, axis=axis).astype(np.int64)
    if keepdims:
        out = np.expand_dims(out, axis)
    return [out]


@kernel("GlobalMaxPool", "default", priority=100)
def global_max_pool(inputs: Sequence[np.ndarray], node: Node,
                    ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    return [x.max(axis=(2, 3), keepdims=True)]


@kernel("LayerNormalization", "default", priority=100)
def layer_norm(inputs: Sequence[np.ndarray], node: Node,
               ctx: ExecutionContext) -> list[np.ndarray]:
    """LayerNorm over the trailing axes from ``axis`` (default -1)."""
    x, scale = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 and inputs[2].size else None
    axis = node.attrs.get_int("axis", -1) % x.ndim
    epsilon = node.attrs.get_float("epsilon", 1e-5)
    reduce_axes = tuple(range(axis, x.ndim))
    mean = x.mean(axis=reduce_axes, keepdims=True)
    var = x.var(axis=reduce_axes, keepdims=True)
    normalised = (x - mean) / np.sqrt(var + epsilon)
    out = normalised * scale
    if bias is not None:
        out = out + bias
    return [out.astype(x.dtype, copy=False)]


@kernel("GroupNormalization", "default", priority=100)
def group_norm(inputs: Sequence[np.ndarray], node: Node,
               ctx: ExecutionContext) -> list[np.ndarray]:
    """GroupNorm over NCHW input: normalise per (batch, channel-group)."""
    x, scale, bias = inputs[0], inputs[1], inputs[2]
    groups = node.attrs.get_int("num_groups")
    epsilon = node.attrs.get_float("epsilon", 1e-5)
    batch, channels = x.shape[0], x.shape[1]
    grouped = x.reshape(batch, groups, channels // groups, *x.shape[2:])
    reduce_axes = tuple(range(2, grouped.ndim))
    mean = grouped.mean(axis=reduce_axes, keepdims=True)
    var = grouped.var(axis=reduce_axes, keepdims=True)
    normalised = ((grouped - mean) / np.sqrt(var + epsilon)).reshape(x.shape)
    channel_shape = (1, channels) + (1,) * (x.ndim - 2)
    out = (normalised * scale.reshape(channel_shape)
           + bias.reshape(channel_shape))
    return [out.astype(x.dtype, copy=False)]


@kernel("Gelu", "default", priority=100)
def gelu(inputs: Sequence[np.ndarray], node: Node,
         ctx: ExecutionContext) -> list[np.ndarray]:
    """Gelu: exact (erf) by default, tanh approximation on request."""
    x = inputs[0]
    approximate = node.attrs.get_str("approximate", "none")
    if approximate == "tanh":
        inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)
        out = 0.5 * x * (1.0 + np.tanh(inner))
        return [out.astype(x.dtype, copy=False)]
    from repro.kernels.activation_kernels import erf
    half_erf = erf([x / np.sqrt(2.0)], node, ctx)[0]
    return [(0.5 * x * (1.0 + half_erf)).astype(x.dtype, copy=False)]
