"""Activation and unary math kernels."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ir.node import Node
from repro.kernels.context import ExecutionContext
from repro.kernels.registry import kernel


@kernel("Relu", "default", priority=100)
def relu(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    return [np.maximum(inputs[0], 0)]


@kernel("LeakyRelu", "default", priority=100)
def leaky_relu(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    alpha = node.attrs.get_float("alpha", 0.01)
    return [np.where(x >= 0, x, np.asarray(alpha, dtype=x.dtype) * x)]


@kernel("Clip", "default", priority=100)
def clip(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    """Clip with bounds from attributes (opset<11) or inputs (opset>=11)."""
    x = inputs[0]
    low: float | np.ndarray | None = None
    high: float | np.ndarray | None = None
    if len(inputs) > 1 and inputs[1] is not None and inputs[1].size:
        low = inputs[1]
    elif "min" in node.attrs:
        low = node.attrs.get_float("min")
    if len(inputs) > 2 and inputs[2] is not None and inputs[2].size:
        high = inputs[2]
    elif "max" in node.attrs:
        high = node.attrs.get_float("max")
    return [np.clip(x, low, high)]


@kernel("Sigmoid", "default", priority=100)
def sigmoid(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    # Split positive/negative branches for numerical stability.
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return [out]


@kernel("Tanh", "default", priority=100)
def tanh(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    return [np.tanh(inputs[0])]


@kernel("Softmax", "default", priority=100)
def softmax(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    """Numerically stable softmax along ``axis`` (default -1, opset 13)."""
    x = inputs[0]
    axis = node.attrs.get_int("axis", -1)
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return [(exps / exps.sum(axis=axis, keepdims=True)).astype(x.dtype, copy=False)]


@kernel("Elu", "default", priority=100)
def elu(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    alpha = node.attrs.get_float("alpha", 1.0)
    return [np.where(x >= 0, x, alpha * (np.exp(np.minimum(x, 0)) - 1)).astype(
        x.dtype, copy=False)]


@kernel("HardSwish", "default", priority=100)
def hard_swish(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    return [(x * np.clip(x / 6.0 + 0.5, 0.0, 1.0)).astype(x.dtype, copy=False)]


@kernel("Erf", "default", priority=100)
def erf(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    """Error function via the Abramowitz & Stegun 7.1.26 rational approximation."""
    x = inputs[0].astype(np.float64)
    sign = np.sign(x)
    t = 1.0 / (1.0 + 0.3275911 * np.abs(x))
    poly = t * (0.254829592 + t * (-0.284496736 + t * (
        1.421413741 + t * (-1.453152027 + t * 1.061405429))))
    result = sign * (1.0 - poly * np.exp(-x * x))
    return [result.astype(inputs[0].dtype, copy=False)]


@kernel("Exp", "default", priority=100)
def exp(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    return [np.exp(inputs[0])]


@kernel("Sqrt", "default", priority=100)
def sqrt(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    return [np.sqrt(inputs[0])]


@kernel("Neg", "default", priority=100)
def neg(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    return [-inputs[0]]


@kernel("Abs", "default", priority=100)
def abs_(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    return [np.abs(inputs[0])]
