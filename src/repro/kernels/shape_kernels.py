"""Data-movement and shape-manipulation kernels."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ir.node import Node
from repro.kernels.context import ExecutionContext
from repro.kernels.registry import kernel


@kernel("Identity", "default", priority=100)
def identity(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    return [inputs[0]]


@kernel("Dropout", "default", priority=100)
def dropout(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    """Inference-mode dropout: identity (plus an all-true mask if requested)."""
    outputs: list[np.ndarray] = [inputs[0]]
    if len(node.outputs) > 1:
        outputs.append(np.ones(inputs[0].shape, dtype=bool))
    return outputs


@kernel("Flatten", "default", priority=100)
def flatten(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    axis = node.attrs.get_int("axis", 1)
    axis %= max(x.ndim, 1)
    lead = int(np.prod(x.shape[:axis], dtype=np.int64)) if axis else 1
    return [x.reshape(lead, -1)]


@kernel("Reshape", "default", priority=100)
def reshape(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    if len(inputs) > 1:
        target = [int(dim) for dim in np.asarray(inputs[1]).reshape(-1)]
    else:
        target = list(node.attrs.get_ints("shape"))
    allowzero = node.attrs.get_int("allowzero", 0)
    if not allowzero:
        target = [x.shape[i] if dim == 0 else dim for i, dim in enumerate(target)]
    return [x.reshape(target)]


@kernel("Transpose", "default", priority=100)
def transpose(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    perm = node.attrs.get_ints("perm", tuple(reversed(range(x.ndim))))
    return [np.ascontiguousarray(x.transpose(perm))]


@kernel("Concat", "default", priority=100)
def concat(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    axis = node.attrs.get_int("axis")
    return [np.concatenate(list(inputs), axis=axis)]


@kernel("Pad", "default", priority=100)
def pad(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    """ONNX Pad: constant / reflect / edge, pads as attr or input."""
    x = inputs[0]
    rank = x.ndim
    if len(inputs) > 1 and inputs[1] is not None and inputs[1].size:
        pads = [int(p) for p in np.asarray(inputs[1]).reshape(-1)]
    else:
        pads = list(node.attrs.get_ints("pads"))
    value = 0.0
    if len(inputs) > 2 and inputs[2] is not None and inputs[2].size:
        value = float(np.asarray(inputs[2]).reshape(-1)[0])
    elif "value" in node.attrs:
        value = node.attrs.get_float("value")
    mode = node.attrs.get_str("mode", "constant")
    width = [(pads[axis], pads[axis + rank]) for axis in range(rank)]
    if mode == "constant":
        return [np.pad(x, width, mode="constant", constant_values=value)]
    if mode == "reflect":
        return [np.pad(x, width, mode="reflect")]
    if mode == "edge":
        return [np.pad(x, width, mode="edge")]
    raise ValueError(f"unsupported Pad mode {mode!r}")


@kernel("Squeeze", "default", priority=100)
def squeeze(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    if len(inputs) > 1 and inputs[1] is not None and inputs[1].size:
        axes = tuple(int(a) % x.ndim for a in np.asarray(inputs[1]).reshape(-1))
    elif "axes" in node.attrs:
        axes = tuple(int(a) % x.ndim for a in node.attrs.get_ints("axes"))
    else:
        axes = tuple(axis for axis, dim in enumerate(x.shape) if dim == 1)
    return [np.squeeze(x, axis=axes)]


@kernel("Unsqueeze", "default", priority=100)
def unsqueeze(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    if len(inputs) > 1 and inputs[1] is not None and inputs[1].size:
        axes = [int(a) for a in np.asarray(inputs[1]).reshape(-1)]
    else:
        axes = list(node.attrs.get_ints("axes"))
    out_rank = x.ndim + len(axes)
    axes = sorted(axis % out_rank for axis in axes)
    out = x
    for axis in axes:
        out = np.expand_dims(out, axis)
    return [out]


@kernel("ReduceMean", "default", priority=100)
def reduce_mean(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    x = inputs[0]
    axes = node.attrs.get_ints("axes", tuple(range(x.ndim)))
    axes = tuple(axis % x.ndim for axis in axes)
    keepdims = bool(node.attrs.get_int("keepdims", 1))
    return [x.mean(axis=axes, keepdims=keepdims).astype(x.dtype, copy=False)]


@kernel("Constant", "default", priority=100)
def constant(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    return [node.attrs.get_tensor("value")]


@kernel("Shape", "default", priority=100)
def shape_op(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    return [np.asarray(inputs[0].shape, dtype=np.int64)]
