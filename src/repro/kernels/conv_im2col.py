"""GEMM convolution (im2col lowering).

This is *the* Orpheus convolution in the paper's evaluation: "Orpheus uses
GEMM convolution, which pays off for big matrices". The input is lowered to
a ``(C*KH*KW, OH*OW)`` matrix and the whole convolution becomes one large
matrix multiply per image, which BLAS executes at near-peak efficiency when
the matrices are large (big channel counts / feature maps).

Two variants are registered:

* ``im2col`` — sliding-window-view lowering + the context's GEMM primitive.
* ``im2col_loops`` — loop-built lowering, same math, more memory traffic;
  the building block for the DarkNet framework simulation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ir.node import Node
from repro.kernels.common import (
    finalize_conv,
    conv_params,
    im2col,
    im2col_loops,
    pad_input,
)
from repro.kernels.context import ExecutionContext
from repro.kernels.registry import kernel


def _conv_gemm(
    inputs: Sequence[np.ndarray],
    node: Node,
    ctx: ExecutionContext,
    lowering,
) -> list[np.ndarray]:
    x, weight = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 else None
    params = conv_params(node, x.shape, weight.shape)
    padded = pad_input(x, params.pads)
    group = params.group
    out = np.empty(
        (params.batch, params.out_channels, params.out_h * params.out_w),
        dtype=x.dtype,
    )
    ch_per_group = params.in_channels // group
    out_per_group = params.out_channels // group
    for g in range(group):
        x_slice = padded[:, g * ch_per_group:(g + 1) * ch_per_group]
        columns = lowering(x_slice, params)  # (N, C/g*KH*KW, OH*OW)
        w_slice = weight[g * out_per_group:(g + 1) * out_per_group]
        w_matrix = w_slice.reshape(out_per_group, -1)  # (O/g, C/g*KH*KW)
        for n in range(params.batch):
            target = out[n, g * out_per_group:(g + 1) * out_per_group]
            if ctx.threads > 1 and out_per_group >= 2 * ctx.threads:
                # OpenMP-style: chunk the GEMM over output channels. BLAS
                # releases the GIL, so the chunks genuinely overlap.
                image_columns = columns[n]

                def chunk(start: int, stop: int) -> None:
                    target[start:stop] = ctx.matmul(
                        w_matrix[start:stop], image_columns)

                ctx.parallel_for(out_per_group, chunk)
            else:
                target[:] = ctx.matmul(w_matrix, columns[n])
    result = out.reshape(
        params.batch, params.out_channels, params.out_h, params.out_w)
    return [finalize_conv(result, bias, node)]


@kernel("Conv", "im2col", priority=100)
def conv_im2col(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """im2col + GEMM convolution (the Orpheus default)."""
    return _conv_gemm(inputs, node, ctx, im2col)


@kernel("Conv", "im2col_loops", priority=10)
def conv_im2col_loops(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """im2col built with explicit per-offset copies + GEMM."""
    return _conv_gemm(inputs, node, ctx, im2col_loops)
