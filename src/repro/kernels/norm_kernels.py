"""Normalisation kernels: BatchNormalization (inference mode) and LRN."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ir.node import Node
from repro.kernels.context import ExecutionContext
from repro.kernels.registry import kernel


@kernel("BatchNormalization", "default", priority=100)
def batch_norm(
    inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext
) -> list[np.ndarray]:
    """Inference-mode batch norm: ``scale * (x - mean) / sqrt(var + eps) + bias``.

    The per-channel affine is precomputed into a single multiply-add, the
    same strength reduction the fold-batchnorm graph pass performs
    statically when a Conv precedes it.
    """
    x, scale, bias, mean, var = inputs[:5]
    epsilon = node.attrs.get_float("epsilon", 1e-5)
    inv_std = 1.0 / np.sqrt(var.astype(np.float64) + epsilon)
    multiplier = (scale * inv_std).astype(x.dtype)
    offset = (bias - mean * scale * inv_std).astype(x.dtype)
    channel_shape = (1, -1) + (1,) * (x.ndim - 2)
    out = x * multiplier.reshape(channel_shape) + offset.reshape(channel_shape)
    return [out]


@kernel("LRN", "default", priority=100)
def lrn(inputs: Sequence[np.ndarray], node: Node, ctx: ExecutionContext) -> list[np.ndarray]:
    """Local response normalisation across channels (AlexNet-era)."""
    x = inputs[0]
    size = node.attrs.get_int("size")
    alpha = node.attrs.get_float("alpha", 1e-4)
    beta = node.attrs.get_float("beta", 0.75)
    k = node.attrs.get_float("bias", 1.0)
    channels = x.shape[1]
    squared = (x.astype(np.float64)) ** 2
    sums = np.zeros_like(squared)
    half = size // 2
    for c in range(channels):
        lo = max(0, c - half)
        hi = min(channels, c + (size - half))
        sums[:, c] = squared[:, lo:hi].sum(axis=1)
    denom = (k + (alpha / size) * sums) ** beta
    return [(x / denom).astype(x.dtype, copy=False)]
