"""Kernel registry: many implementations per operator.

This is the heart of the paper's design — "layers are treated as first class
citizens, and have multiple implementations which are selected at runtime".
Every kernel registers under ``(op_type, impl_name)`` with a priority and an
applicability predicate; a backend (see :mod:`repro.backends`) turns the
registry into a concrete per-node choice.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import KernelError
from repro.ir.node import Node
from repro.kernels.context import ExecutionContext

KernelFn = Callable[[Sequence[np.ndarray], Node, ExecutionContext], list[np.ndarray]]
Predicate = Callable[[Node, Sequence[tuple[int, ...]]], bool]


@dataclasses.dataclass(frozen=True)
class KernelImpl:
    """One registered implementation of one operator.

    Attributes:
        op_type: operator this kernel implements (e.g. ``"Conv"``).
        name: implementation name (e.g. ``"im2col"``, ``"winograd"``).
        fn: the kernel function.
        priority: tie-break when a backend expresses no preference; higher
            wins.
        applicable: returns False when the node's attributes/shapes rule the
            kernel out (e.g. Winograd requires 3x3 stride-1 convolutions).
        experimental: excluded from default selection; only chosen when a
            backend or user names it explicitly.
    """

    op_type: str
    name: str
    fn: KernelFn
    priority: int = 0
    applicable: Predicate | None = None
    experimental: bool = False

    def supports(self, node: Node, input_shapes: Sequence[tuple[int, ...]]) -> bool:
        if self.applicable is None:
            return True
        return self.applicable(node, input_shapes)

    @property
    def key(self) -> str:
        return f"{self.op_type}:{self.name}"


class KernelRegistry:
    """Mutable mapping of ``(op_type, impl_name)`` to :class:`KernelImpl`."""

    def __init__(self) -> None:
        self._impls: dict[str, dict[str, KernelImpl]] = {}

    def register(self, impl: KernelImpl) -> None:
        per_op = self._impls.setdefault(impl.op_type, {})
        if impl.name in per_op:
            raise KernelError(f"kernel {impl.key!r} registered twice")
        per_op[impl.name] = impl

    def unregister(self, op_type: str, name: str) -> None:
        per_op = self._impls.get(op_type, {})
        if name not in per_op:
            raise KernelError(f"kernel {op_type}:{name} is not registered")
        del per_op[name]

    def get(self, op_type: str, name: str) -> KernelImpl:
        try:
            return self._impls[op_type][name]
        except KeyError:
            raise KernelError(
                f"no kernel {op_type}:{name}; available: "
                f"{sorted(self._impls.get(op_type, {}))}"
            ) from None

    def implementations(self, op_type: str) -> list[KernelImpl]:
        """All implementations of ``op_type``, highest priority first."""
        impls = list(self._impls.get(op_type, {}).values())
        return sorted(impls, key=lambda impl: (-impl.priority, impl.name))

    def op_types(self) -> list[str]:
        return sorted(self._impls)

    def candidates(
        self, node: Node, input_shapes: Sequence[tuple[int, ...]],
        include_experimental: bool = False,
    ) -> list[KernelImpl]:
        """Applicable implementations for ``node``, highest priority first."""
        return [
            impl
            for impl in self.implementations(node.op_type)
            if (include_experimental or not impl.experimental)
            and impl.supports(node, input_shapes)
        ]

    def select(
        self,
        node: Node,
        input_shapes: Sequence[tuple[int, ...]],
        preferences: Sequence[str] = (),
    ) -> KernelImpl:
        """Pick an implementation for ``node``.

        ``preferences`` is an ordered list of implementation names (the
        backend's policy for this op); the first applicable preferred name
        wins, otherwise the highest-priority applicable kernel.

        Raises:
            KernelError: no implementation exists or none is applicable.
        """
        per_op = self._impls.get(node.op_type)
        if not per_op:
            raise KernelError(f"no kernels registered for op {node.op_type!r}")
        for name in preferences:
            impl = per_op.get(name)
            if impl is not None and impl.supports(node, input_shapes):
                return impl
        candidates = self.candidates(node, input_shapes)
        if not candidates:
            raise KernelError(
                f"no applicable kernel for node {node.name!r} ({node.op_type}) "
                f"with input shapes {list(input_shapes)}"
            )
        return candidates[0]


# The global registry all built-in kernels register into. Backends may also
# carry private registries; the executor consults the backend.
REGISTRY = KernelRegistry()


def kernel(
    op_type: str,
    name: str,
    priority: int = 0,
    applicable: Predicate | None = None,
    experimental: bool = False,
) -> Callable[[KernelFn], KernelFn]:
    """Decorator registering ``fn`` in the global registry."""

    def decorator(fn: KernelFn) -> KernelFn:
        REGISTRY.register(KernelImpl(
            op_type=op_type, name=name, fn=fn, priority=priority,
            applicable=applicable, experimental=experimental,
        ))
        return fn

    return decorator
