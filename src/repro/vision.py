"""Image preprocessing for edge deployment.

The part of "deploying deep learning applications like image classification"
that sits in front of the network: resize, crop, normalise, layout. Pure
numpy, NHWC uint8 in (the camera/decoder layout), NCHW float32 out (the
runtime layout). ``preprocess_for`` applies each zoo model's canonical
pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.models import zoo

#: Standard ImageNet statistics (RGB, 0-1 range).
IMAGENET_MEAN = np.array([0.485, 0.456, 0.406], dtype=np.float32)
IMAGENET_STD = np.array([0.229, 0.224, 0.225], dtype=np.float32)
#: Inception-family models normalise to [-1, 1] instead.
INCEPTION_MEAN = np.array([0.5, 0.5, 0.5], dtype=np.float32)
INCEPTION_STD = np.array([0.5, 0.5, 0.5], dtype=np.float32)


def _require_hwc(image: np.ndarray) -> None:
    if image.ndim != 3 or image.shape[2] not in (1, 3):
        raise ValueError(
            f"expected an HWC image with 1 or 3 channels, got {image.shape}")


def resize_nearest(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resize of an HWC image."""
    _require_hwc(image)
    src_h, src_w = image.shape[:2]
    rows = np.minimum((np.arange(height) * (src_h / height)).astype(np.int64),
                      src_h - 1)
    cols = np.minimum((np.arange(width) * (src_w / width)).astype(np.int64),
                      src_w - 1)
    return image[rows][:, cols]


def resize_bilinear(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinear resize of an HWC image (align_corners=False convention)."""
    _require_hwc(image)
    src_h, src_w = image.shape[:2]
    data = image.astype(np.float32)
    # Half-pixel-centre sampling positions.
    ys = np.clip((np.arange(height) + 0.5) * (src_h / height) - 0.5,
                 0, src_h - 1)
    xs = np.clip((np.arange(width) + 0.5) * (src_w / width) - 0.5,
                 0, src_w - 1)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0).astype(np.float32)[:, None, None]
    wx = (xs - x0).astype(np.float32)[None, :, None]
    top = data[y0][:, x0] * (1 - wx) + data[y0][:, x1] * wx
    bottom = data[y1][:, x0] * (1 - wx) + data[y1][:, x1] * wx
    return top * (1 - wy) + bottom * wy


def center_crop(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Crop the central ``height x width`` window of an HWC image."""
    _require_hwc(image)
    src_h, src_w = image.shape[:2]
    if height > src_h or width > src_w:
        raise ValueError(
            f"crop {height}x{width} larger than image {src_h}x{src_w}")
    top = (src_h - height) // 2
    left = (src_w - width) // 2
    return image[top:top + height, left:left + width]


def normalize(image: np.ndarray, mean: np.ndarray = IMAGENET_MEAN,
              std: np.ndarray = IMAGENET_STD) -> np.ndarray:
    """uint8/float HWC image -> float32 HWC, scaled to [0,1] then normalised."""
    _require_hwc(image)
    data = image.astype(np.float32)
    if image.dtype == np.uint8:
        data = data / 255.0
    return (data - mean.reshape(1, 1, -1)) / std.reshape(1, 1, -1)


def to_nchw(image: np.ndarray) -> np.ndarray:
    """HWC image (or batch of HWC) -> NCHW float32 batch."""
    if image.ndim == 3:
        image = image[np.newaxis]
    if image.ndim != 4:
        raise ValueError(f"expected HWC or NHWC, got shape {image.shape}")
    return np.ascontiguousarray(image.transpose(0, 3, 1, 2)).astype(
        np.float32, copy=False)


def preprocess_for(model_name: str, image: np.ndarray) -> np.ndarray:
    """The canonical preprocessing pipeline for a zoo model.

    Resize the short side ~1.14x the target (the classic 256-for-224 ratio),
    centre-crop to the model's input resolution, normalise with the family's
    statistics, and emit an NCHW float32 batch of one.
    """
    entry = zoo.get_entry(model_name)
    size = entry.image_size
    _require_hwc(image)
    # To float [0,1] *before* resizing, so normalisation sees one scale.
    data = image.astype(np.float32)
    if image.dtype == np.uint8:
        data = data / 255.0
    src_h, src_w = data.shape[:2]
    scale = (size * 8 // 7) / min(src_h, src_w)
    resized = resize_bilinear(
        data, max(int(round(src_h * scale)), size),
        max(int(round(src_w * scale)), size))
    cropped = center_crop(resized, size, size)
    if model_name == "inception-v3":
        normalised = normalize(cropped, INCEPTION_MEAN, INCEPTION_STD)
    else:
        normalised = normalize(cropped)
    return to_nchw(normalised)
