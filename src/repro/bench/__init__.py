"""Benchmark harness: the paper's experiments and the ablation infrastructure."""

from repro.bench.figure2 import Exclusion, Figure2Result, run_figure2
from repro.bench.harness import (
    FailureRow,
    RunStats,
    run_guarded,
    time_model,
    time_session,
)
from repro.bench.journal import JournalEntry, RunJournal, cell_key, open_journal
from repro.bench.layerwise import (
    STANDARD_CONV_CASES,
    ConvCase,
    LayerRaceResult,
    race_conv_impls,
)
from repro.bench.regression import (
    RegressionReport,
    check_baseline,
    measure_baseline,
    save_baseline,
)
from repro.bench.quant import (
    format_quant_bench,
    measure_quant_crossover,
    save_quant_bench,
)
from repro.bench.reporting import format_csv, format_table
from repro.bench.sweeps import SweepPoint, SweepResult, batch_sweep, resolution_sweep
from repro.bench.table1 import render_table1, table1_csv, table1_headers, table1_rows
from repro.bench.workloads import (
    calibration_batches,
    model_input,
    synthetic_image_batch,
)

__all__ = [
    "ConvCase",
    "Exclusion",
    "FailureRow",
    "Figure2Result",
    "JournalEntry",
    "RunJournal",
    "cell_key",
    "open_journal",
    "run_guarded",
    "LayerRaceResult",
    "RegressionReport",
    "RunStats",
    "STANDARD_CONV_CASES",
    "check_baseline",
    "measure_baseline",
    "save_baseline",
    "SweepPoint",
    "SweepResult",
    "batch_sweep",
    "resolution_sweep",
    "calibration_batches",
    "format_csv",
    "format_quant_bench",
    "format_table",
    "measure_quant_crossover",
    "save_quant_bench",
    "model_input",
    "race_conv_impls",
    "render_table1",
    "run_figure2",
    "synthetic_image_batch",
    "table1_csv",
    "table1_headers",
    "table1_rows",
    "time_model",
    "time_session",
]
