"""Result formatting: aligned text tables and CSV, shared by all experiments."""

from __future__ import annotations

from collections.abc import Sequence

Cell = "str | int | float | None"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table.

    ``None`` cells render as ``-`` (the harness uses this for excluded
    framework/model combinations, mirroring the gaps in the paper's
    Figure 2).
    """

    def render(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in rendered))
        if rendered else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as CSV (empty cell for ``None``)."""

    def render(cell: object) -> str:
        if cell is None:
            return ""
        text = str(cell)
        if "," in text or '"' in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(render(cell) for cell in row))
    return "\n".join(lines)
