"""Parameter sweeps: latency vs batch size and input resolution.

The classic edge-deployment questions the paper's experiment infrastructure
exists to answer: how does inference time scale when frames are batched,
and what does lowering the camera resolution buy? Each sweep prepares one
session per configuration and times it with the shared warmup/median
protocol.
"""

from __future__ import annotations

import dataclasses
import statistics
import time

from repro.backends.backend import Backend
from repro.bench.harness import FailureRow, run_guarded
from repro.bench.journal import RunJournal, open_journal
from repro.bench.reporting import format_csv, format_table
from repro.bench.workloads import model_input
from repro.models import zoo
from repro.runtime.session import InferenceSession, _validate_protocol


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One configuration's timing."""

    model: str
    batch: int
    image_size: int
    times: tuple[float, ...]

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def per_item_ms(self) -> float:
        """Median latency per batched item, in milliseconds."""
        return self.median * 1e3 / self.batch


@dataclasses.dataclass(frozen=True)
class SweepResult:
    model: str
    parameter: str                      # "batch" | "image_size"
    points: tuple[SweepPoint, ...]
    failures: tuple[FailureRow, ...] = ()
    resumed: int = 0    # cells replayed from a run journal

    @property
    def complete(self) -> bool:
        """True when every requested configuration was measured."""
        return not self.failures

    def rows(self) -> list[list[object]]:
        return [
            [getattr(point, self.parameter), point.median * 1e3,
             point.per_item_ms]
            for point in self.points
        ]

    def table(self) -> str:
        body = format_table(
            [self.parameter, "median (ms)", "per item (ms)"],
            self.rows(),
            title=f"{self.model}: latency vs {self.parameter}")
        notes = [f"  {failure}" for failure in self.failures]
        return "\n".join([body, *notes])

    def csv(self) -> str:
        return format_csv(
            [self.parameter, "median_ms", "per_item_ms"], self.rows())

    def scaling_factor(self) -> float:
        """Last point's per-item cost over the first's (<1 = amortising).

        Raises:
            ValueError: fewer than two points were measured (e.g. the rest
                of the sweep degraded into failure rows).
        """
        if len(self.points) < 2:
            raise ValueError(
                f"scaling_factor needs >= 2 measured points, have "
                f"{len(self.points)} ({len(self.failures)} failed)")
        return self.points[-1].per_item_ms / self.points[0].per_item_ms


def _time_config(
    model: str, batch: int, image_size: int | None,
    backend: "str | Backend", threads: int, repeats: int, warmup: int,
    deadline_ms: float | None = None,
    memory_budget_bytes: int | None = None,
    budget_mode: str = "reject",
    engine_cache=None,
) -> SweepPoint:
    graph = zoo.build(model, batch=batch, image_size=image_size)
    if engine_cache is not None:
        # Warm-start the prepare from the cache (populating it on miss);
        # the timing loop below is identical either way.
        session, _ = engine_cache.session(
            graph, model=model, backend=backend, threads=threads,
            batch=batch, image_size=image_size,
            memory_budget_bytes=memory_budget_bytes, budget_mode=budget_mode)
    else:
        session = InferenceSession(
            graph, backend=backend, threads=threads,
            memory_budget_bytes=memory_budget_bytes, budget_mode=budget_mode)
    x = model_input(model, batch=batch, image_size=image_size)
    feed = {"input": x}
    for _ in range(warmup):
        session.run(feed, deadline_ms=deadline_ms)
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        session.run(feed, deadline_ms=deadline_ms)
        times.append(time.perf_counter() - started)
    return SweepPoint(
        model=model, batch=batch,
        image_size=image_size or zoo.get_entry(model).image_size,
        times=tuple(times))


def _run_sweep(
    model: str,
    parameter: str,
    cells: "tuple[tuple[int, int | None], ...]",  # (batch, image_size) pairs
    backend: "str | Backend",
    threads: int,
    repeats: int,
    warmup: int,
    retries: int,
    deadline_ms: float | None,
    memory_budget_bytes: int | None,
    budget_mode: str,
    journal: "RunJournal | str | None",
    engine_cache=None,
) -> SweepResult:
    """Shared sweep engine: failure boundary + run-journal per cell."""
    _validate_protocol(repeats, warmup)
    if isinstance(engine_cache, str):
        from repro.engine.cache import EngineCache
        engine_cache = EngineCache(engine_cache)
    backend_name = backend if isinstance(backend, str) else backend.name
    book = open_journal(journal)
    points: list[SweepPoint] = []
    failures: list[FailureRow] = []
    resumed = 0
    for batch, image_size in cells:
        varying = batch if parameter == "batch" else image_size
        label = f"{model}@{parameter}={varying}"
        key = {
            "experiment": f"{parameter}_sweep", "model": model,
            "backend": backend_name, "batch": batch,
            "image_size": image_size, "threads": threads,
            "repeats": repeats, "warmup": warmup,
        }
        if book is not None:
            entry = book.get(**key)
            if entry is not None:
                resumed += 1
                if entry.kind == "measurement":
                    points.append(SweepPoint(
                        model=model, batch=batch,
                        image_size=int(entry.payload.get(
                            "resolved_image_size",
                            image_size or zoo.get_entry(model).image_size)),
                        times=tuple(entry.payload["times"])))
                else:
                    failures.append(entry.to_failure_row())
                continue
        # Guardrail kwargs are passed only when armed, so tests (and
        # downstream code) stubbing _time_config with the historical
        # 7-argument signature keep working.
        guardrails: dict = {}
        if deadline_ms is not None:
            guardrails["deadline_ms"] = deadline_ms
        if memory_budget_bytes is not None:
            guardrails["memory_budget_bytes"] = memory_budget_bytes
            guardrails["budget_mode"] = budget_mode
        if engine_cache is not None:
            guardrails["engine_cache"] = engine_cache
        point, failure = run_guarded(
            lambda: _time_config(model, batch, image_size, backend, threads,
                                 repeats, warmup, **guardrails),
            label=label, retries=retries)
        if failure is not None:
            failures.append(failure)
            if book is not None:
                book.record_failure(key, failure)
        else:
            points.append(point)
            if book is not None:
                book.record_measurement(
                    key, point.times, resolved_image_size=point.image_size)
    return SweepResult(model=model, parameter=parameter,
                       points=tuple(points), failures=tuple(failures),
                       resumed=resumed)


def batch_sweep(
    model: str,
    batches: tuple[int, ...] = (1, 2, 4, 8),
    image_size: int | None = None,
    backend: "str | Backend" = "orpheus",
    threads: int = 1,
    repeats: int = 5,
    warmup: int = 1,
    retries: int = 1,
    deadline_ms: float | None = None,
    memory_budget_bytes: int | None = None,
    budget_mode: str = "reject",
    journal: "RunJournal | str | None" = None,
    engine_cache=None,
) -> SweepResult:
    """Latency vs batch size at fixed resolution.

    A configuration that keeps failing with an
    :class:`~repro.errors.OrpheusError` (after ``retries`` extra tries)
    becomes a :class:`~repro.bench.harness.FailureRow` on the result
    instead of aborting the sweep. That boundary also absorbs the resource
    guardrails: an over-budget batch (``memory_budget_bytes``) or an
    expired per-run deadline (``deadline_ms``) turns into a failure row
    and the remaining batches keep measuring.

    With a ``journal``, each completed cell is appended as it finishes and
    already-recorded cells are replayed instead of re-measured
    (``SweepResult.resumed`` counts them), so a killed sweep restarts
    where it died.

    ``engine_cache`` (an :class:`~repro.engine.cache.EngineCache` or a
    directory path) warm-starts each configuration's prepare from a
    compiled engine, populating the cache on the first pass — a re-run
    sweep then skips every cold prepare.
    """
    return _run_sweep(
        model, "batch", tuple((b, image_size) for b in batches),
        backend, threads, repeats, warmup, retries,
        deadline_ms, memory_budget_bytes, budget_mode, journal,
        engine_cache=engine_cache)


def resolution_sweep(
    model: str,
    image_sizes: tuple[int, ...],
    backend: "str | Backend" = "orpheus",
    threads: int = 1,
    repeats: int = 5,
    warmup: int = 1,
    retries: int = 1,
    deadline_ms: float | None = None,
    memory_budget_bytes: int | None = None,
    budget_mode: str = "reject",
    journal: "RunJournal | str | None" = None,
    engine_cache=None,
) -> SweepResult:
    """Latency vs input resolution at batch 1.

    Degrades per point like :func:`batch_sweep` (failure rows, resource
    guardrails, resumable journal, ``engine_cache`` warm starts): failing
    configurations turn into failure rows, the sweep always completes,
    and a journal lets it resume.
    """
    return _run_sweep(
        model, "image_size", tuple((1, size) for size in image_sizes),
        backend, threads, repeats, warmup, retries,
        deadline_ms, memory_budget_bytes, budget_mode, journal,
        engine_cache=engine_cache)
