"""Parameter sweeps: latency vs batch size and input resolution.

The classic edge-deployment questions the paper's experiment infrastructure
exists to answer: how does inference time scale when frames are batched,
and what does lowering the camera resolution buy? Each sweep prepares one
session per configuration and times it with the shared warmup/median
protocol.
"""

from __future__ import annotations

import dataclasses
import statistics
import time

from repro.backends.backend import Backend
from repro.bench.harness import FailureRow, run_guarded
from repro.bench.reporting import format_csv, format_table
from repro.bench.workloads import model_input
from repro.models import zoo
from repro.runtime.session import InferenceSession, _validate_protocol


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One configuration's timing."""

    model: str
    batch: int
    image_size: int
    times: tuple[float, ...]

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def per_item_ms(self) -> float:
        """Median latency per batched item, in milliseconds."""
        return self.median * 1e3 / self.batch


@dataclasses.dataclass(frozen=True)
class SweepResult:
    model: str
    parameter: str                      # "batch" | "image_size"
    points: tuple[SweepPoint, ...]
    failures: tuple[FailureRow, ...] = ()

    @property
    def complete(self) -> bool:
        """True when every requested configuration was measured."""
        return not self.failures

    def rows(self) -> list[list[object]]:
        return [
            [getattr(point, self.parameter), point.median * 1e3,
             point.per_item_ms]
            for point in self.points
        ]

    def table(self) -> str:
        body = format_table(
            [self.parameter, "median (ms)", "per item (ms)"],
            self.rows(),
            title=f"{self.model}: latency vs {self.parameter}")
        notes = [f"  {failure}" for failure in self.failures]
        return "\n".join([body, *notes])

    def csv(self) -> str:
        return format_csv(
            [self.parameter, "median_ms", "per_item_ms"], self.rows())

    def scaling_factor(self) -> float:
        """Last point's per-item cost over the first's (<1 = amortising).

        Raises:
            ValueError: fewer than two points were measured (e.g. the rest
                of the sweep degraded into failure rows).
        """
        if len(self.points) < 2:
            raise ValueError(
                f"scaling_factor needs >= 2 measured points, have "
                f"{len(self.points)} ({len(self.failures)} failed)")
        return self.points[-1].per_item_ms / self.points[0].per_item_ms


def _time_config(
    model: str, batch: int, image_size: int | None,
    backend: "str | Backend", threads: int, repeats: int, warmup: int,
) -> SweepPoint:
    graph = zoo.build(model, batch=batch, image_size=image_size)
    session = InferenceSession(graph, backend=backend, threads=threads)
    x = model_input(model, batch=batch, image_size=image_size)
    feed = {"input": x}
    for _ in range(warmup):
        session.run(feed)
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        session.run(feed)
        times.append(time.perf_counter() - started)
    return SweepPoint(
        model=model, batch=batch,
        image_size=image_size or zoo.get_entry(model).image_size,
        times=tuple(times))


def batch_sweep(
    model: str,
    batches: tuple[int, ...] = (1, 2, 4, 8),
    image_size: int | None = None,
    backend: "str | Backend" = "orpheus",
    threads: int = 1,
    repeats: int = 5,
    warmup: int = 1,
    retries: int = 1,
) -> SweepResult:
    """Latency vs batch size at fixed resolution.

    A configuration that keeps failing with an
    :class:`~repro.errors.OrpheusError` (after ``retries`` extra tries)
    becomes a :class:`~repro.bench.harness.FailureRow` on the result
    instead of aborting the sweep.
    """
    _validate_protocol(repeats, warmup)
    points: list[SweepPoint] = []
    failures: list[FailureRow] = []
    for batch in batches:
        point, failure = run_guarded(
            lambda: _time_config(model, batch, image_size, backend, threads,
                                 repeats, warmup),
            label=f"{model}@batch={batch}", retries=retries)
        if failure is not None:
            failures.append(failure)
        else:
            points.append(point)
    return SweepResult(model=model, parameter="batch", points=tuple(points),
                       failures=tuple(failures))


def resolution_sweep(
    model: str,
    image_sizes: tuple[int, ...],
    backend: "str | Backend" = "orpheus",
    threads: int = 1,
    repeats: int = 5,
    warmup: int = 1,
    retries: int = 1,
) -> SweepResult:
    """Latency vs input resolution at batch 1.

    Degrades per point like :func:`batch_sweep`: failing configurations
    turn into failure rows, the sweep always completes.
    """
    _validate_protocol(repeats, warmup)
    points: list[SweepPoint] = []
    failures: list[FailureRow] = []
    for size in image_sizes:
        point, failure = run_guarded(
            lambda: _time_config(model, 1, size, backend, threads, repeats,
                                 warmup),
            label=f"{model}@image_size={size}", retries=retries)
        if failure is not None:
            failures.append(failure)
        else:
            points.append(point)
    return SweepResult(model=model, parameter="image_size",
                       points=tuple(points), failures=tuple(failures))
