"""Per-layer experiments: racing kernel implementations on single layers.

The paper's contribution list includes "infrastructure to run multiple
inference experiments, evaluating full networks, and individual layers".
This module is the individual-layer half: race every applicable
implementation of an operator over a set of layer shapes and report the
grid — the data behind the conv-algorithm ablation benchmarks.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Sequence

import numpy as np

from repro.bench.reporting import format_csv, format_table
from repro.ir.node import Node
from repro.kernels.context import ExecutionContext
from repro.kernels.registry import REGISTRY


@dataclasses.dataclass(frozen=True)
class ConvCase:
    """One convolution layer shape to race implementations on."""

    label: str
    input_shape: tuple[int, int, int, int]       # NCHW
    weight_shape: tuple[int, int, int, int]      # OIHW
    stride: int = 1
    pad: int | None = None                       # None: "same"-ish (k//2)
    group: int = 1

    def node(self) -> Node:
        kh, kw = self.weight_shape[2], self.weight_shape[3]
        pad = self.pad if self.pad is not None else kh // 2
        return Node("Conv", ["x", "w"], ["y"], {
            "kernel_shape": (kh, kw),
            "strides": (self.stride, self.stride),
            "pads": (pad, pad, pad, pad),
            "dilations": (1, 1),
            "group": self.group,
        }, name=self.label)


#: Layer shapes spanning the paper's five models, small to large.
STANDARD_CONV_CASES: tuple[ConvCase, ...] = (
    ConvCase("wrn-stage1 3x3", (1, 32, 32, 32), (32, 32, 3, 3)),
    ConvCase("wrn-stage2 3x3", (1, 64, 16, 16), (64, 64, 3, 3)),
    ConvCase("wrn-stage3 3x3", (1, 128, 8, 8), (128, 128, 3, 3)),
    ConvCase("mobilenet pw 1x1", (1, 128, 56, 56), (128, 128, 1, 1), pad=0),
    ConvCase("mobilenet dw 3x3", (1, 256, 28, 28), (256, 1, 3, 3), group=256),
    ConvCase("resnet stem 7x7/2", (1, 3, 224, 224), (64, 3, 7, 7), stride=2),
    ConvCase("resnet18 3x3 mid", (1, 128, 28, 28), (128, 128, 3, 3)),
    ConvCase("resnet50 1x1 wide", (1, 256, 56, 56), (64, 256, 1, 1), pad=0),
    ConvCase("resnet50 3x3 deep", (1, 512, 7, 7), (512, 512, 3, 3)),
    ConvCase("inception 5x5", (1, 48, 35, 35), (64, 48, 5, 5)),
)


@dataclasses.dataclass
class LayerRaceResult:
    """Times (seconds) per implementation for each case; None = inapplicable."""

    cases: tuple[ConvCase, ...]
    impls: tuple[str, ...]
    times: dict[tuple[str, str], float | None]  # (case label, impl) -> seconds

    def best_impl(self, case_label: str) -> str | None:
        timed = [
            (impl, t) for (label, impl), t in self.times.items()
            if label == case_label and t is not None
        ]
        return min(timed, key=lambda item: item[1])[0] if timed else None

    def rows(self) -> list[list[object]]:
        table = []
        for case in self.cases:
            row: list[object] = [case.label]
            for impl in self.impls:
                seconds = self.times.get((case.label, impl))
                row.append(None if seconds is None else seconds * 1e3)
            row.append(self.best_impl(case.label) or "-")
            table.append(row)
        return table

    def headers(self) -> list[str]:
        return ["layer", *[f"{impl} (ms)" for impl in self.impls], "best"]

    def table(self) -> str:
        return format_table(
            self.headers(), self.rows(),
            title="Per-layer convolution algorithm race",
            float_format="{:.3f}")

    def csv(self) -> str:
        return format_csv(self.headers(), self.rows())


def race_conv_impls(
    cases: Sequence[ConvCase] = STANDARD_CONV_CASES,
    impls: Sequence[str] = ("im2col", "direct", "spatial_pack", "winograd",
                            "direct_dw"),
    repeats: int = 5,
    threads: int = 1,
    seed: int = 0,
) -> LayerRaceResult:
    """Race convolution implementations over ``cases``."""
    rng = np.random.default_rng(seed)
    times: dict[tuple[str, str], float | None] = {}
    for case in cases:
        node = case.node()
        x = rng.standard_normal(case.input_shape).astype(np.float32)
        w = rng.standard_normal(case.weight_shape).astype(np.float32)
        shapes = [case.input_shape, case.weight_shape]
        for impl_name in impls:
            impl = REGISTRY.get("Conv", impl_name)
            if not impl.supports(node, shapes):
                times[(case.label, impl_name)] = None
                continue
            ctx = ExecutionContext(threads=threads)
            impl.fn([x, w], node, ctx)  # warmup (also fills weight caches)
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                impl.fn([x, w], node, ctx)
                best = min(best, time.perf_counter() - started)
            times[(case.label, impl_name)] = best
    return LayerRaceResult(
        cases=tuple(cases), impls=tuple(impls), times=times)
