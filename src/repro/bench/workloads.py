"""Workload generation for the benchmark harness.

Inference timing is input-value independent, but the harness still feeds
realistic image-statistics tensors (ImageNet-normalised) so that any future
value-dependent optimisation (e.g. activation sparsity) is exercised
honestly.
"""

from __future__ import annotations

import numpy as np

from repro.models import zoo

# Per-channel ImageNet statistics (RGB).
_MEAN = np.array([0.485, 0.456, 0.406], dtype=np.float32)
_STD = np.array([0.229, 0.224, 0.225], dtype=np.float32)


def synthetic_image_batch(
    shape: tuple[int, int, int, int], seed: int = 0
) -> np.ndarray:
    """A batch of normalised synthetic "images" (NCHW float32).

    Pixels are drawn uniform in [0, 1) with smooth spatial structure (a
    low-frequency mixture), then ImageNet-normalised — the tensor statistics
    a real preprocessing pipeline would produce.
    """
    batch, channels, height, width = shape
    rng = np.random.default_rng(seed)
    ys = np.linspace(0.0, 4.0 * np.pi, height, dtype=np.float32)
    xs = np.linspace(0.0, 4.0 * np.pi, width, dtype=np.float32)
    base = 0.5 + 0.25 * np.sin(ys)[:, None] * np.cos(xs)[None, :]
    noise = rng.random((batch, channels, height, width), dtype=np.float32)
    images = np.clip(0.5 * base + 0.5 * noise, 0.0, 1.0)
    if channels == 3:
        images = (images - _MEAN.reshape(1, 3, 1, 1)) / _STD.reshape(1, 3, 1, 1)
    return images.astype(np.float32)


def model_input(model_name: str, batch: int = 1,
                image_size: int | None = None, seed: int = 0) -> np.ndarray:
    """The canonical benchmark input for a zoo model."""
    shape = zoo.input_shape(model_name, batch=batch)
    if image_size is not None:
        shape = (shape[0], shape[1], image_size, image_size)
    return synthetic_image_batch(shape, seed=seed)


def calibration_batches(
    model_name: str, count: int = 4, batch: int = 1,
    image_size: int | None = None, seed: int = 0,
) -> list[np.ndarray]:
    """Distinct input batches for quantization calibration."""
    return [
        model_input(model_name, batch=batch, image_size=image_size,
                    seed=seed + index)
        for index in range(count)
    ]
