"""Figure 2: single-thread inference time across models and frameworks.

The paper's evaluation figure plots the inference time of five models
(WRN-40-2, MobileNetV1, ResNet-18, Inception-v3, ResNet-50) under Orpheus,
TVM and PyTorch on one Cortex-A73 core, and explains why DarkNet and
TF-Lite are excluded. :func:`run_figure2` regenerates the full grid —
measurements where a framework can run the model, recorded exclusion
reasons where it cannot.
"""

from __future__ import annotations

import dataclasses

from repro.errors import FrameworkUnavailableError
from repro.frameworks.adapters import EVALUATION_ORDER
from repro.frameworks.base import Measurement, get_adapter
from repro.bench.harness import FailureRow, run_guarded
from repro.bench.journal import RunJournal, open_journal
from repro.bench.reporting import format_csv, format_table
from repro.models.zoo import FIGURE2_MODELS


@dataclasses.dataclass(frozen=True)
class Exclusion:
    """A (framework, model) cell the framework could not run — with the reason."""

    framework: str
    model: str
    reason: str


@dataclasses.dataclass
class Figure2Result:
    """The regenerated Figure 2 grid."""

    measurements: list[Measurement]
    exclusions: list[Exclusion]
    models: tuple[str, ...]
    frameworks: tuple[str, ...]
    threads: int
    repeats: int
    failures: list[FailureRow] = dataclasses.field(default_factory=list)
    resumed: int = 0    # cells answered from a run journal, not re-measured

    @property
    def complete(self) -> bool:
        """True when no cell failed unexpectedly (exclusions are expected)."""
        return not self.failures

    def median_ms(self, framework: str, model: str) -> float | None:
        for m in self.measurements:
            if m.framework == framework and m.model == model:
                return m.median * 1e3
        return None

    def best_ms(self, framework: str, model: str) -> float | None:
        """Min-of-N time — the noise-robust statistic for ranking claims."""
        for m in self.measurements:
            if m.framework == framework and m.model == model:
                return m.best * 1e3
        return None

    def winner(self, model: str) -> str | None:
        """Framework with the lowest median time on ``model``."""
        best_name, best_time = None, float("inf")
        for m in self.measurements:
            if m.model == model and m.median < best_time:
                best_name, best_time = m.framework, m.median
        return best_name

    def speedup(self, model: str, framework: str, baseline: str) -> float | None:
        """``baseline`` time / ``framework`` time (>1 means faster)."""
        mine = self.median_ms(framework, model)
        theirs = self.median_ms(baseline, model)
        if mine is None or theirs is None:
            return None
        return theirs / mine

    def rows(self) -> list[list[object]]:
        table = []
        for model in self.models:
            row: list[object] = [model]
            for framework in self.frameworks:
                row.append(self.median_ms(framework, model))
            row.append(self.winner(model) or "-")
            table.append(row)
        return table

    def headers(self) -> list[str]:
        return ["model", *[f"{fw} (ms)" for fw in self.frameworks], "winner"]

    def table(self) -> str:
        body = format_table(
            self.headers(), self.rows(),
            title=(f"Figure 2: inference time, {self.threads} thread(s), "
                   f"median of {self.repeats}"))
        notes = [
            f"  excluded {exc.framework}/{exc.model}: {exc.reason}"
            for exc in self.exclusions
        ]
        notes.extend(f"  {failure}" for failure in self.failures)
        return "\n".join([body, *notes])

    def csv(self) -> str:
        return format_csv(self.headers(), self.rows())

    def chart(self, width: int = 52) -> str:
        """Render the grid as horizontal ASCII bars — the literal figure.

        Bars are scaled per model (each model gets its own axis, like the
        paper's clustered columns); excluded cells render as the exclusion
        marker.
        """
        lines = [f"Figure 2: inference time, {self.threads} thread(s), "
                 f"median of {self.repeats} (bar scale per model)"]
        label_width = max(len(fw) for fw in self.frameworks)
        for model in self.models:
            lines.append("")
            lines.append(f"{model}")
            cells = {fw: self.median_ms(fw, model) for fw in self.frameworks}
            known = [ms for ms in cells.values() if ms is not None]
            top = max(known) if known else 1.0
            winner = self.winner(model)
            for framework in self.frameworks:
                ms = cells[framework]
                if ms is None:
                    lines.append(f"  {framework:<{label_width}} |"
                                 " (excluded — see notes)")
                    continue
                bar = "#" * max(1, round(width * ms / top))
                marker = "  <- fastest" if framework == winner else ""
                lines.append(f"  {framework:<{label_width}} |{bar} "
                             f"{ms:.1f} ms{marker}")
        return "\n".join(lines)


def run_figure2(
    models: tuple[str, ...] = FIGURE2_MODELS,
    frameworks: tuple[str, ...] = EVALUATION_ORDER,
    threads: int = 1,
    repeats: int = 5,
    warmup: int = 1,
    batch: int = 1,
    image_size: int | None = None,
    verbose: bool = False,
    retries: int = 1,
    journal: "RunJournal | str | None" = None,
    engine_cache: "str | None | object" = None,
) -> Figure2Result:
    """Measure every (framework, model) cell of Figure 2.

    Frameworks that raise :class:`FrameworkUnavailableError` for a model are
    recorded as exclusions with the adapter's stated reason — the same
    bookkeeping the paper reports in prose for DarkNet and TF-Lite.

    Every other :class:`~repro.errors.OrpheusError` — a broken adapter, a
    kernel whose whole fallback chain is exhausted — is confined to its
    cell: the call is retried up to ``retries`` times and then recorded as
    a structured :class:`~repro.bench.harness.FailureRow`, so one poisoned
    (framework, model) combination never aborts the sweep.

    Per model, the timing rounds are *interleaved* across frameworks
    (round-robin) rather than measured back to back, so slow drift in
    machine state (thermal, cache, background load) hits every framework
    equally instead of biasing whichever happened to run first.

    With a ``journal`` (a :class:`~repro.bench.journal.RunJournal` or a
    path to one), every completed cell is appended to the JSONL journal as
    it finishes, and cells the journal already holds — same framework,
    model, and measurement protocol — are replayed from it instead of
    re-measured. A campaign killed after N cells therefore resumes at cell
    N+1; ``Figure2Result.resumed`` counts the replayed cells.

    ``engine_cache`` (an :class:`~repro.engine.cache.EngineCache` or a
    directory path) warm-starts each cell's prepare from a compiled engine
    when one is cached, and freezes cold prepares back into the cache.
    Only adapters whose ``prepare`` accepts the cache take part; adapters
    with bespoke prepare paths (e.g. the TVM simulation's autotuning) keep
    preparing cold. Timing is unaffected either way — the cache only
    moves startup cost.
    """
    import inspect
    import time

    from repro.bench.workloads import model_input

    if isinstance(engine_cache, str):
        from repro.engine.cache import EngineCache
        engine_cache = EngineCache(engine_cache)

    book = open_journal(journal)
    resumed = 0

    def key_for(framework: str, model: str) -> dict:
        return {
            "experiment": "figure2", "framework": framework, "model": model,
            "batch": batch, "threads": threads, "image_size": image_size,
            "repeats": repeats, "warmup": warmup,
        }

    measurements: list[Measurement] = []
    exclusions: list[Exclusion] = []
    failures: list[FailureRow] = []
    for model in models:
        prepared = {}
        for framework in frameworks:
            if book is not None:
                entry = book.get(**key_for(framework, model))
                if entry is not None:
                    resumed += 1
                    if entry.kind == "measurement":
                        measurements.append(Measurement(
                            framework=framework, model=model,
                            times=tuple(entry.payload["times"])))
                    elif entry.kind == "exclusion":
                        exclusions.append(Exclusion(
                            framework, model,
                            str(entry.payload.get("reason", ""))))
                    else:
                        failures.append(entry.to_failure_row())
                    if verbose:
                        print(f"[figure2] {framework:8s} {model:13s} "
                              f"resumed from journal ({entry.kind})")
                    continue
            adapter = get_adapter(framework)
            prepare_kwargs: dict = {}
            if engine_cache is not None and "engine_cache" in (
                    inspect.signature(adapter.prepare).parameters):
                prepare_kwargs["engine_cache"] = engine_cache
            try:
                runnable, failure = run_guarded(
                    lambda: adapter.prepare(
                        model, batch=batch, image_size=image_size,
                        threads=threads, **prepare_kwargs),
                    label=f"{framework}/{model}", stage="prepare",
                    retries=retries,
                    reraise=(FrameworkUnavailableError,))
            except FrameworkUnavailableError as exc:
                exclusions.append(Exclusion(framework, model, str(exc)))
                if book is not None:
                    book.record_exclusion(key_for(framework, model), str(exc))
                if verbose:
                    print(f"[figure2] {framework:8s} {model:13s} "
                          f"excluded: {exc}")
                continue
            if failure is not None:
                failures.append(failure)
                if book is not None:
                    book.record_failure(key_for(framework, model), failure)
                if verbose:
                    print(f"[figure2] {failure}")
                continue
            prepared[framework] = runnable
        if not prepared:
            continue
        x = model_input(model, batch=batch, image_size=image_size)
        overheads = {
            fw: getattr(p, "per_run_overhead_s", 0.0)
            for fw, p in prepared.items()
        }
        for framework, runnable in list(prepared.items()):
            _, failure = run_guarded(
                lambda: [runnable.run(x) for _ in range(warmup)],
                label=f"{framework}/{model}", stage="warmup",
                retries=retries)
            if failure is not None:
                failures.append(failure)
                if book is not None:
                    book.record_failure(key_for(framework, model), failure)
                if verbose:
                    print(f"[figure2] {failure}")
                del prepared[framework]
        times: dict[str, list[float]] = {fw: [] for fw in prepared}
        for _round in range(repeats):
            for framework, runnable in list(prepared.items()):

                def timed_run() -> float:
                    started = time.perf_counter()
                    runnable.run(x)
                    return time.perf_counter() - started

                elapsed, failure = run_guarded(
                    timed_run, label=f"{framework}/{model}", stage="run",
                    retries=retries)
                if failure is not None:
                    # Drop the framework from the remaining rounds: its
                    # cell is reported as failed, the others keep going.
                    failures.append(failure)
                    if book is not None:
                        book.record_failure(key_for(framework, model), failure)
                    if verbose:
                        print(f"[figure2] {failure}")
                    del prepared[framework]
                    del times[framework]
                    continue
                times[framework].append(elapsed + overheads[framework])
        for framework, samples in times.items():
            measurement = Measurement(
                framework=framework, model=model, times=tuple(samples))
            measurements.append(measurement)
            if book is not None:
                book.record_measurement(
                    key_for(framework, model), measurement.times)
            if verbose:
                print(f"[figure2] {framework:8s} {model:13s} "
                      f"{measurement.median * 1e3:9.2f} ms "
                      f"(best {measurement.best * 1e3:.2f})")
    return Figure2Result(
        measurements=measurements, exclusions=exclusions,
        models=tuple(models), frameworks=tuple(frameworks),
        threads=threads, repeats=repeats, failures=failures,
        resumed=resumed)
