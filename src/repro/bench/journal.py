"""Resumable evaluation campaigns: the JSONL run-journal.

Multi-config campaigns (Figure 2 grids, batch/resolution sweeps) are long
enough that losing every partial result to one crash is the dominant cost
of edge evaluation. The journal makes the *campaign* fault-tolerant: every
completed cell — a (model, backend, batch, threads, ...) configuration —
is appended to a JSONL file the moment it finishes, with its stats. A
killed campaign restarted against the same journal skips every recorded
cell and re-measures nothing.

Format — one JSON object per line:

* ``{"kind": "header", "version": 1}`` — first line of a fresh journal.
* ``{"kind": "measurement", "key": {...}, "payload": {"times": [...]}}``
* ``{"kind": "exclusion", "key": {...}, "payload": {"reason": "..."}}``
* ``{"kind": "failure", "key": {...}, "payload": {FailureRow fields}}``

``key`` identifies the cell *and* its measurement protocol (repeats,
warmup, threads, image size...), so resuming with different flags never
reuses mismatched numbers. Writes are append-and-flush per entry: a kill
between entries loses at most the in-flight cell. A truncated final line
(killed mid-write) is tolerated on load *and trimmed from the file*, so
the next append starts a clean line; any other malformed line raises
:class:`~repro.errors.JournalError`.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os

from repro.bench.harness import FailureRow
from repro.errors import JournalError

JOURNAL_VERSION = 1

#: entry kinds a journal line may carry (besides the header)
KINDS = ("measurement", "exclusion", "failure")


def cell_key(**fields: object) -> str:
    """Canonical string form of a cell key (order-insensitive)."""
    return json.dumps(
        {name: fields[name] for name in sorted(fields)},
        sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One completed cell: what it was, and what came out of it."""

    kind: str            # "measurement" | "exclusion" | "failure"
    key: dict
    payload: dict

    def to_failure_row(self) -> FailureRow:
        if self.kind != "failure":
            raise JournalError(f"entry is a {self.kind}, not a failure")
        return FailureRow(
            label=str(self.payload.get("label", "")),
            stage=str(self.payload.get("stage", "run")),
            error_type=str(self.payload.get("error_type", "OrpheusError")),
            message=str(self.payload.get("message", "")),
            attempts=int(self.payload.get("attempts", 1)))


class RunJournal:
    """Append-only JSONL record of a campaign's completed cells.

    Args:
        path: journal file location.
        resume: load existing entries and append (``True``) or start a
            fresh journal, truncating anything already there (``False``).
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False) -> None:
        self.path = os.fspath(path)
        self.entries: dict[str, JournalEntry] = {}
        self.skipped = 0          # cells answered from the journal this run
        self.corrupt_lines = 0    # tolerated truncated trailing line(s)
        if resume and os.path.exists(self.path):
            self._load()
        else:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                self._write_line(handle, {
                    "kind": "header", "version": JOURNAL_VERSION})

    # -- loading ---------------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "rb") as handle:
            raw = handle.read()
        keep = len(raw)
        newline_at = raw.rfind(b"\n")
        tail = raw[newline_at + 1:] if newline_at >= 0 else raw
        if tail:
            # Killed mid-append before the newline made it out. Tolerating
            # the partial record on load is not enough: the file must also
            # be trimmed back to the last complete line, or the next
            # append concatenates onto the partial tail and turns a
            # recoverable truncation into permanent mid-file corruption.
            self.corrupt_lines += 1
            keep = newline_at + 1 if newline_at >= 0 else 0
        lines = raw[:keep].split(b"\n")[:-1] if keep else []
        for index, line_bytes in enumerate(lines):
            line = line_bytes.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # A torn final line that still got its newline out:
                    # same treatment — drop, count, trim.
                    self.corrupt_lines += 1
                    keep -= len(line_bytes) + 1
                    continue
                raise JournalError(
                    f"{self.path}:{index + 1}: malformed journal line")
            kind = record.get("kind")
            if kind == "header":
                version = record.get("version")
                if version != JOURNAL_VERSION:
                    raise JournalError(
                        f"{self.path}: journal version {version!r}, "
                        f"this runtime writes {JOURNAL_VERSION}")
                continue
            if kind not in KINDS:
                raise JournalError(
                    f"{self.path}:{index + 1}: unknown entry kind {kind!r}")
            key = record.get("key")
            if not isinstance(key, dict):
                raise JournalError(
                    f"{self.path}:{index + 1}: entry without a key")
            entry = JournalEntry(
                kind=kind, key=key, payload=record.get("payload") or {})
            self.entries[cell_key(**key)] = entry
        if keep < len(raw):
            with open(self.path, "rb+") as handle:
                handle.truncate(keep)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, **key: object) -> JournalEntry | None:
        """The recorded entry for this cell, or ``None``. Counts a skip."""
        entry = self.entries.get(cell_key(**key))
        if entry is not None:
            self.skipped += 1
        return entry

    def has(self, **key: object) -> bool:
        return cell_key(**key) in self.entries

    # -- recording -------------------------------------------------------------

    def record_measurement(self, key: dict, times: "tuple[float, ...] | list[float]",
                           **extra: object) -> JournalEntry:
        payload: dict = {"times": [float(t) for t in times]}
        payload.update(extra)
        return self.record("measurement", key, payload)

    def record_exclusion(self, key: dict, reason: str) -> JournalEntry:
        return self.record("exclusion", key, {"reason": reason})

    def record_failure(self, key: dict, failure: FailureRow) -> JournalEntry:
        return self.record("failure", key, dataclasses.asdict(failure))

    def record(self, kind: str, key: dict, payload: dict) -> JournalEntry:
        """Append one completed cell (durable immediately: flush + fsync)."""
        if kind not in KINDS:
            raise JournalError(f"unknown entry kind {kind!r}")
        entry = JournalEntry(kind=kind, key=dict(key), payload=payload)
        self.entries[cell_key(**key)] = entry
        with open(self.path, "a", encoding="utf-8") as handle:
            self._write_line(handle, {
                "kind": kind, "key": entry.key, "payload": payload})
        return entry

    @staticmethod
    def _write_line(handle: io.TextIOBase, record: dict) -> None:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def __repr__(self) -> str:
        return (f"RunJournal({self.path!r}: {len(self.entries)} cell(s), "
                f"{self.skipped} skipped this run)")


def open_journal(
    journal: "RunJournal | str | os.PathLike | None", resume: bool = True,
) -> RunJournal | None:
    """Normalise the ``journal=`` argument the bench entry points accept.

    ``None`` passes through; a :class:`RunJournal` is used as-is; a path
    opens (by default resuming — handing a path to a sweep means "reuse
    what this file already knows").
    """
    if journal is None or isinstance(journal, RunJournal):
        return journal
    return RunJournal(journal, resume=resume)
