"""Table I: the qualitative framework-comparison table.

Renders the feature scores from :mod:`repro.frameworks.features` in the
paper's layout (criteria as rows, frameworks as columns, scores 1-3).
"""

from __future__ import annotations

from repro.bench.reporting import format_csv, format_table
from repro.frameworks.features import CRITERIA, FRAMEWORKS, RATIONALE, SCORES


def table1_rows() -> list[list[object]]:
    return [
        [criterion, *[SCORES[framework][criterion] for framework in FRAMEWORKS]]
        for criterion in CRITERIA
    ]


def table1_headers() -> list[str]:
    return ["criterion", *FRAMEWORKS]


def render_table1(with_rationale: bool = False) -> str:
    """The paper's Table I as aligned text."""
    body = format_table(
        table1_headers(), table1_rows(),
        title="Table I: Comparison of Deep Learning frameworks (scores 1-3)")
    if not with_rationale:
        return body
    notes = [f"  {framework}: {RATIONALE[framework]}" for framework in FRAMEWORKS]
    return "\n".join([body, "", "Rationale (from Section II):", *notes])


def table1_csv() -> str:
    return format_csv(table1_headers(), table1_rows())
