"""Table I: the qualitative framework-comparison table.

Renders the feature scores from :mod:`repro.frameworks.features` in the
paper's layout (criteria as rows, frameworks as columns, scores 1-3).

Like the timing sweeps, rendering degrades gracefully: a framework with a
missing or malformed score entry (a third-party features table plugged in
by a user) renders its cells as ``-`` and is reported as a structured
failure note instead of blowing up the whole table.
"""

from __future__ import annotations

from repro.bench.harness import FailureRow
from repro.bench.journal import RunJournal, open_journal
from repro.bench.reporting import format_csv, format_table
from repro.frameworks.features import CRITERIA, FRAMEWORKS, RATIONALE, SCORES


def _score(framework: str, criterion: str) -> "int | None":
    """Score for one cell, ``None`` when the entry is absent."""
    per_framework = SCORES.get(framework)
    if per_framework is None:
        return None
    return per_framework.get(criterion)


def framework_scores(
    framework: str, journal: "RunJournal | str | None" = None,
) -> "dict[str, int | None]":
    """One framework's score column, journal-cached per framework.

    With a journal, a column already recorded (same framework, same
    criteria list) is replayed instead of recomputed — the same
    skip-completed-cells contract the timing sweeps follow, so a mixed
    campaign (tables + timings) resumes uniformly.
    """
    key = {"experiment": "table1", "framework": framework,
           "criteria": list(CRITERIA)}
    book = open_journal(journal)
    if book is not None:
        entry = book.get(**key)
        if entry is not None and entry.kind == "measurement":
            recorded = entry.payload.get("scores", {})
            return {criterion: recorded.get(criterion)
                    for criterion in CRITERIA}
    scores = {criterion: _score(framework, criterion)
              for criterion in CRITERIA}
    if book is not None:
        book.record("measurement", key, {"scores": scores})
    return scores


def table1_rows(journal: "RunJournal | str | None" = None) -> list[list[object]]:
    book = open_journal(journal)
    columns = {fw: framework_scores(fw, book) for fw in FRAMEWORKS}
    return [
        [criterion, *[columns[framework][criterion] for framework in FRAMEWORKS]]
        for criterion in CRITERIA
    ]


def table1_headers() -> list[str]:
    return ["criterion", *FRAMEWORKS]


def table1_failures() -> list[FailureRow]:
    """One failure row per framework with missing score entries."""
    failures = []
    for framework in FRAMEWORKS:
        missing = [criterion for criterion in CRITERIA
                   if _score(framework, criterion) is None]
        if missing:
            failures.append(FailureRow(
                label=f"table1/{framework}", stage="prepare",
                error_type="MissingScores",
                message=f"no score for criteria: {', '.join(missing)}",
                attempts=1))
    return failures


def render_table1(with_rationale: bool = False,
                  journal: "RunJournal | str | None" = None,
                  engine_cache=None) -> str:
    """The paper's Table I as aligned text (missing cells render as ``-``).

    ``engine_cache`` is accepted for uniformity with the timing harnesses
    (a campaign driver passes one cache everywhere) and ignored: Table I
    is qualitative and prepares no sessions.
    """
    del engine_cache
    body = format_table(
        table1_headers(), table1_rows(journal=journal),
        title="Table I: Comparison of Deep Learning frameworks (scores 1-3)")
    notes = [f"  {failure}" for failure in table1_failures()]
    if notes:
        body = "\n".join([body, *notes])
    if not with_rationale:
        return body
    rationale = [
        f"  {framework}: {RATIONALE.get(framework, '(no rationale recorded)')}"
        for framework in FRAMEWORKS
    ]
    return "\n".join([body, "", "Rationale (from Section II):", *rationale])


def table1_csv() -> str:
    return format_csv(table1_headers(), table1_rows())
