"""Performance-regression tracking.

A maintained inference framework needs to notice when a "refactor" slows
MobileNet down 15%. This module snapshots the current machine's timings for
a set of configurations into a JSON baseline, and later runs compare
against it with a noise tolerance:

    orpheus bench baseline --save perf.json
    ...hack...
    orpheus bench baseline --check perf.json

Baselines are machine-specific (absolute times), so they belong in a local
file or CI cache keyed by runner type — not in the repository.

:func:`measure_engine_startup` tracks a different trajectory: cold session
prepare (build + validate + plan + select) versus warm start from a
compiled engine file, per model. Its *speedup ratios* are meaningful
across machines even though the absolute times are not, so the saved
``BENCH_engine_startup.json`` document is worth committing.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import statistics
import sys
import tempfile
import time

from repro import __version__
from repro.bench.harness import time_model

#: (model, backend, image_size) configurations tracked by default — small
#: enough to run in seconds, covering both conv regimes and the depthwise path.
DEFAULT_CONFIGS: tuple[tuple[str, str, int | None], ...] = (
    ("wrn-40-2", "orpheus", None),
    ("wrn-40-2", "winograd", None),
    ("mobilenet-v1", "orpheus", 128),
    ("resnet18", "orpheus", 128),
)


def _config_key(model: str, backend: str, image_size: int | None) -> str:
    return f"{model}/{backend}/{image_size or 'full'}"


def measure_baseline(
    configs=None, repeats: int = 7, warmup: int = 2,
) -> dict:
    """Time every configuration; returns the baseline document."""
    if configs is None:  # resolved at call time so tests can patch the set
        configs = DEFAULT_CONFIGS
    entries = {}
    for model, backend, image_size in configs:
        stats = time_model(
            model, backend=backend, image_size=image_size,
            repeats=repeats, warmup=warmup)
        entries[_config_key(model, backend, image_size)] = {
            "model": model,
            "backend": backend,
            "image_size": image_size,
            "median_ms": round(stats.median * 1e3, 4),
            "best_ms": round(stats.best * 1e3, 4),
        }
    return {
        "version": __version__,
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "repeats": repeats,
        "entries": entries,
    }


def save_baseline(path: str, configs=None,
                  repeats: int = 7, warmup: int = 2) -> dict:
    document = measure_baseline(configs, repeats=repeats, warmup=warmup)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


@dataclasses.dataclass(frozen=True)
class RegressionFinding:
    config: str
    baseline_ms: float
    current_ms: float

    @property
    def ratio(self) -> float:
        return self.current_ms / self.baseline_ms

    def __str__(self) -> str:
        return (f"{self.config}: {self.baseline_ms:.2f} ms -> "
                f"{self.current_ms:.2f} ms ({self.ratio:.2f}x)")


@dataclasses.dataclass(frozen=True)
class RegressionReport:
    regressions: tuple[RegressionFinding, ...]
    improvements: tuple[RegressionFinding, ...]
    checked: int
    tolerance: float

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [f"checked {self.checked} configurations "
                 f"(tolerance {self.tolerance:.0%})"]
        for finding in self.regressions:
            lines.append(f"  REGRESSION {finding}")
        for finding in self.improvements:
            lines.append(f"  improved   {finding}")
        if self.ok and not self.improvements:
            lines.append("  all within tolerance")
        return "\n".join(lines)


# -- engine startup trajectory --------------------------------------------------------

#: Models tracked by the startup benchmark: both conv regimes, the
#: depthwise path, and the deepest zoo ResNet.
ENGINE_STARTUP_MODELS: tuple[str, ...] = (
    "wrn-40-2", "mobilenet-v1", "resnet18", "resnet50")


def measure_engine_startup(
    models: "tuple[str, ...] | None" = None,
    backend: str = "orpheus",
    threads: int = 1,
    repeats: int = 3,
    engine_dir: "str | None" = None,
) -> dict:
    """Cold-vs-warm session startup per model; returns the document.

    "Cold" is the full deployment path — build the zoo graph, then let
    ``InferenceSession`` validate, simplify, infer shapes, plan memory,
    and select kernels. "Warm" is ``InferenceSession.from_engine`` on a
    compiled engine file. Each phase's median over ``repeats`` runs is
    recorded; ``speedup`` is cold total over warm load.

    Engine files go to ``engine_dir`` (a temporary directory by default,
    removed afterwards).
    """
    from repro.engine import compile_to_file
    from repro.models import zoo
    from repro.runtime.session import InferenceSession

    if models is None:  # resolved at call time so tests can patch the set
        models = ENGINE_STARTUP_MODELS
    entries: dict = {}
    with tempfile.TemporaryDirectory() as scratch:
        directory = engine_dir or scratch
        os.makedirs(directory, exist_ok=True)
        for model in models:
            path = os.path.join(directory, f"{model}.oeng")
            graph = zoo.build(model)
            compile_to_file(graph, path, backend=backend, threads=threads,
                            metadata={"model": model})
            build_s, prepare_s, warm_s = [], [], []
            for _ in range(repeats):
                started = time.perf_counter()
                graph = zoo.build(model)
                build_s.append(time.perf_counter() - started)
                started = time.perf_counter()
                InferenceSession(graph, backend=backend, threads=threads)
                prepare_s.append(time.perf_counter() - started)
                started = time.perf_counter()
                InferenceSession.from_engine(path)
                warm_s.append(time.perf_counter() - started)
            cold_ms = (statistics.median(build_s)
                       + statistics.median(prepare_s)) * 1e3
            warm_ms = statistics.median(warm_s) * 1e3
            entries[model] = {
                "cold_build_ms": round(statistics.median(build_s) * 1e3, 3),
                "cold_prepare_ms": round(
                    statistics.median(prepare_s) * 1e3, 3),
                "cold_total_ms": round(cold_ms, 3),
                "warm_load_ms": round(warm_ms, 3),
                "speedup": round(cold_ms / warm_ms, 2) if warm_ms else None,
                "engine_bytes": os.path.getsize(path),
            }
    return {
        "version": __version__,
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "backend": backend,
        "threads": threads,
        "repeats": repeats,
        "entries": entries,
    }


def save_engine_startup(path: str, **kwargs) -> dict:
    """:func:`measure_engine_startup`, saved as pretty JSON."""
    document = measure_engine_startup(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def format_engine_startup(document: dict) -> str:
    """The startup document as an aligned text table."""
    lines = [f"engine startup, backend={document['backend']}, "
             f"threads={document['threads']}, "
             f"median of {document['repeats']}:",
             f"  {'model':14s} {'cold (ms)':>10s} {'warm (ms)':>10s} "
             f"{'speedup':>8s}"]
    for model, entry in document["entries"].items():
        lines.append(
            f"  {model:14s} {entry['cold_total_ms']:10.1f} "
            f"{entry['warm_load_ms']:10.1f} {entry['speedup']:7.2f}x")
    return "\n".join(lines)


def save_serve_bench(path: str, document: dict) -> dict:
    """Persist a :func:`repro.serve.run_serve_bench` document as JSON.

    Only the structural results (counts, shed reasons, pass/fail checks,
    latency *ratios* via the recorded bound) are meaningful across
    machines; absolute latencies are machine-local, same caveat as
    ``BENCH_engine_startup.json``.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_serve_bench(document: dict) -> str:
    """The serve-bench document as an aligned text report."""
    lines = [
        f"serve bench: {document['model']} "
        f"backends={'/'.join(document['backends'])} "
        f"workers={document['workers']} max_batch={document['max_batch']} "
        f"(saturation ~{document['saturation_rps']:.1f} rps)",
        f"  {'scenario':10s} {'rps':>6s} {'offered':>8s} {'done':>6s} "
        f"{'shed':>6s} {'fail':>5s} {'p50':>8s} {'p99':>8s} {'ok?':>4s}",
    ]
    for scenario in document["scenarios"]:
        load = scenario["load"]
        latency = load["latency_ms"]
        shed = sum(load["rejected"].values())
        lines.append(
            f"  {scenario['scenario']:10s} {scenario['rps']:6.1f} "
            f"{load['offered']:8d} {load['completed']:6d} {shed:6d} "
            f"{load['failed']:5d} {latency['p50']:8.2f} "
            f"{latency['p99']:8.2f} "
            f"{'pass' if scenario['passed'] else 'FAIL':>4s}")
        failed_checks = [name for name, ok in scenario["checks"].items()
                         if not ok]
        if failed_checks:
            lines.append(f"    failed checks: {', '.join(failed_checks)}")
        if load["rejected"]:
            sheds = ", ".join(f"{reason} x{count}" for reason, count
                              in sorted(load["rejected"].items()))
            lines.append(f"    sheds: {sheds}")
        robustness = scenario.get("robustness", {})
        if robustness.get("breaker_trips"):
            lines.append(
                f"    breaker: {robustness['breaker_trips']} trip(s), "
                f"{robustness['breaker_recoveries']} recover(ies), "
                f"{robustness['reroutes']} rerouted batch(es)")
    lines.append(f"overall: {'pass' if document['passed'] else 'FAIL'}")
    return "\n".join(lines)


def save_chaos_bench(path: str, document: dict) -> dict:
    """Persist a :func:`repro.serve.run_chaos_bench` document as JSON.

    Everything recorded is structural (deaths, restarts, quarantine,
    closed-books accounting, pass/fail checks) except the recovery
    seconds, which are machine-local but bounded by the committed
    ``recovery_window_s``.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_chaos_bench(document: dict) -> str:
    """The serve-chaos document as an aligned text report."""
    lines = [
        f"serve chaos: {document['model']} "
        f"workers={document['workers']} killed={document['killed']} "
        f"max_batch={document['max_batch']} "
        f"(recovery window {document['recovery_window_s']:g}s)",
    ]
    for scenario in document["scenarios"]:
        supervision = scenario["supervision"]
        deaths = ", ".join(
            f"{reason} x{count}"
            for reason, count in sorted(supervision["deaths"].items()))
        status = "pass" if scenario["passed"] else "FAIL"
        lines.append(
            f"  {scenario['scenario']:18s} {status:>4s}  "
            f"alive {supervision['alive']}/{supervision['workers']}, "
            f"{supervision['restarts']} restart(s)"
            + (f", deaths: {deaths}" if deaths else ""))
        if scenario.get("recovery_s") is not None:
            lines.append(
                f"    recovered in {scenario['recovery_s']:.2f}s")
        if supervision["quarantined"]:
            lines.append(
                f"    quarantined: "
                f"{', '.join(supervision['quarantined'])}")
        load = scenario.get("load")
        if load:
            lines.append(
                f"    load: {load['completed']}/{load['offered']} "
                f"completed, {sum(load['rejected'].values())} shed, "
                f"{load['failed']} failed, "
                f"{load['silent_drops']} silent drop(s)")
        failed_checks = [name for name, ok in scenario["checks"].items()
                         if not ok]
        if failed_checks:
            lines.append(f"    failed checks: {', '.join(failed_checks)}")
    lines.append(f"overall: {'pass' if document['passed'] else 'FAIL'}")
    return "\n".join(lines)


def check_baseline(
    path: str, tolerance: float = 0.25, repeats: int = 7, warmup: int = 2,
) -> RegressionReport:
    """Re-measure the baseline's configurations and compare medians.

    ``tolerance`` is generous by default (25%) because single-machine
    medians wobble; tighten it on a quiet, pinned CI runner.
    """
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    regressions = []
    improvements = []
    for key, entry in document["entries"].items():
        stats = time_model(
            entry["model"], backend=entry["backend"],
            image_size=entry["image_size"], repeats=repeats, warmup=warmup)
        current_ms = stats.median * 1e3
        finding = RegressionFinding(
            config=key, baseline_ms=entry["median_ms"],
            current_ms=round(current_ms, 4))
        if finding.ratio > 1.0 + tolerance:
            regressions.append(finding)
        elif finding.ratio < 1.0 - tolerance:
            improvements.append(finding)
    return RegressionReport(
        regressions=tuple(regressions),
        improvements=tuple(improvements),
        checked=len(document["entries"]),
        tolerance=tolerance)
