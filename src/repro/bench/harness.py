"""Generic experiment runner: timed full-network inference with statistics.

This is the "infrastructure to run multiple inference experiments,
evaluating full networks" from the paper's contribution list, shared by the
Figure 2 driver, the ablation benchmarks, and the CLI ``bench`` command.
"""

from __future__ import annotations

import dataclasses
import statistics

import numpy as np

from repro.backends.backend import Backend
from repro.bench.workloads import model_input
from repro.models import zoo
from repro.runtime.session import InferenceSession


@dataclasses.dataclass(frozen=True)
class RunStats:
    """Timing statistics for one experiment configuration."""

    label: str
    times: tuple[float, ...]

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0

    def summary(self) -> str:
        return (f"{self.label}: median {self.median * 1e3:.2f} ms, "
                f"best {self.best * 1e3:.2f} ms, "
                f"stdev {self.stdev * 1e3:.2f} ms over {len(self.times)} runs")


def time_session(
    session: InferenceSession,
    feeds: dict[str, np.ndarray],
    repeats: int = 5,
    warmup: int = 1,
    label: str = "run",
) -> RunStats:
    """Warm up and time an already-prepared session."""
    times = session.time(feeds, repeats=repeats, warmup=warmup)
    return RunStats(label=label, times=tuple(times))


def time_model(
    model_name: str,
    backend: "str | Backend" = "orpheus",
    threads: int = 1,
    optimize: bool = True,
    repeats: int = 5,
    warmup: int = 1,
    batch: int = 1,
    image_size: int | None = None,
    seed: int = 0,
) -> RunStats:
    """Build, prepare, and time a zoo model end to end."""
    graph = zoo.build(model_name, batch=batch, image_size=image_size, seed=seed)
    session = InferenceSession(
        graph, backend=backend, threads=threads, optimize=optimize)
    x = model_input(model_name, batch=batch, image_size=image_size, seed=seed)
    backend_name = backend if isinstance(backend, str) else backend.name
    return time_session(
        session, {"input": x}, repeats=repeats, warmup=warmup,
        label=f"{model_name}/{backend_name}/t{threads}")
