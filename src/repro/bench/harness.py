"""Generic experiment runner: timed full-network inference with statistics.

This is the "infrastructure to run multiple inference experiments,
evaluating full networks" from the paper's contribution list, shared by the
Figure 2 driver, the ablation benchmarks, and the CLI ``bench`` command.

It also hosts the *failure boundary* the whole bench stack shares: partial
failures — unsupported ops, numerically unstable kernels, unavailable
frameworks — are the norm in edge evaluation, so sweeps convert framework
errors into structured :class:`FailureRow`\\ s (with bounded retry) and keep
measuring instead of aborting.
"""

from __future__ import annotations

import dataclasses
import statistics
from collections.abc import Callable
from typing import TypeVar

import numpy as np

from repro.backends.backend import Backend
from repro.bench.workloads import model_input
from repro.errors import OrpheusError
from repro.models import zoo
from repro.runtime.session import InferenceSession

T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class FailureRow:
    """One configuration a sweep could not measure — and why.

    Mirrors the paper's availability notes (DarkNet ships only the ResNets,
    TF-Lite cannot pin one thread): instead of aborting the sweep, the cell
    is reported as a structured failure.
    """

    label: str          # e.g. "darknet/mobilenet-v1" or "resnet18@batch=4"
    stage: str          # "prepare" | "warmup" | "run"
    error_type: str     # exception class name
    message: str
    attempts: int       # tries consumed (1 = no retry granted/needed)

    def __str__(self) -> str:
        retry = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return (f"FAILED {self.label} [{self.stage}] "
                f"{self.error_type}: {self.message}{retry}")


def run_guarded(
    fn: Callable[[], T],
    label: str,
    stage: str = "run",
    retries: int = 1,
    catch: tuple[type[BaseException], ...] = (OrpheusError,),
    reraise: tuple[type[BaseException], ...] = (),
) -> tuple[T | None, FailureRow | None]:
    """Call ``fn`` inside a failure boundary with bounded retry.

    Returns ``(result, None)`` on success or ``(None, FailureRow)`` once
    ``fn`` has failed ``retries + 1`` times with an exception from
    ``catch``. Exceptions outside ``catch`` (programming errors,
    ``KeyboardInterrupt``) propagate unchanged, as do ``reraise``
    subclasses even when they fall under ``catch`` (used to let expected,
    deterministic unavailability — exclusions — bypass the retry loop).

    Retry accounting is never silent: ``FailureRow.attempts`` is the exact
    number of calls made, and an exception that escapes through ``reraise``
    after earlier retried failures carries the count it consumed as an
    ``attempts_consumed`` attribute — a cell that burned tries before
    turning out to be unavailable still reports every one of them.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return fn(), None
        except catch as exc:
            if isinstance(exc, reraise):
                # Don't swallow earlier retries: the escaping exception
                # reports how many tries this boundary consumed.
                exc.attempts_consumed = attempts
                raise
            if attempts > retries:
                return None, FailureRow(
                    label=label, stage=stage,
                    error_type=type(exc).__name__, message=str(exc),
                    attempts=attempts)


@dataclasses.dataclass(frozen=True)
class RunStats:
    """Timing statistics for one experiment configuration.

    ``max_abs_err`` is the accuracy proxy: the maximum absolute difference
    of this configuration's outputs against an fp32 reference run on the
    same feeds (``None`` when no reference was requested). Quantized
    backends report it so speedups are never quoted without the numeric
    cost alongside.
    """

    label: str
    times: tuple[float, ...]
    max_abs_err: float | None = None

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0

    def summary(self) -> str:
        text = (f"{self.label}: median {self.median * 1e3:.2f} ms, "
                f"best {self.best * 1e3:.2f} ms, "
                f"stdev {self.stdev * 1e3:.2f} ms over {len(self.times)} runs")
        if self.max_abs_err is not None:
            text += f", max|err| {self.max_abs_err:.3g}"
        return text


def time_session(
    session: InferenceSession,
    feeds: dict[str, np.ndarray],
    repeats: int = 5,
    warmup: int = 1,
    label: str = "run",
) -> RunStats:
    """Warm up and time an already-prepared session."""
    times = session.time(feeds, repeats=repeats, warmup=warmup)
    return RunStats(label=label, times=tuple(times))


def time_model(
    model_name: str,
    backend: "str | Backend" = "orpheus",
    threads: int = 1,
    optimize: bool = True,
    repeats: int = 5,
    warmup: int = 1,
    batch: int = 1,
    image_size: int | None = None,
    seed: int = 0,
    deadline_ms: float | None = None,
    memory_budget_bytes: int | None = None,
    budget_mode: str = "reject",
    accuracy_vs: "str | Backend | None" = None,
) -> RunStats:
    """Build, prepare, and time a zoo model end to end.

    With a memory budget, admission control runs before anything executes;
    in ``budget_mode="degrade"`` an over-budget batched workload is retried
    at batch 1 (the session itself already tried the arena-friendly
    schedule), and the stats are labelled accordingly. A model that cannot
    fit even degraded raises :class:`~repro.errors.MemoryBudgetError`,
    which the sweep-level failure boundary converts into a
    :class:`FailureRow`.

    ``accuracy_vs`` names a reference backend (typically ``"orpheus"``
    when timing ``"int8"``): after timing, both sessions run once on the
    same input and the max absolute output difference is reported as
    :attr:`RunStats.max_abs_err`. The reference runs without the memory
    budget — it is a numeric yardstick, not a competitor.
    """
    from repro.errors import MemoryBudgetError

    backend_name = backend if isinstance(backend, str) else backend.name

    def build(at_batch: int) -> "tuple[InferenceSession, np.ndarray]":
        graph = zoo.build(
            model_name, batch=at_batch, image_size=image_size, seed=seed)
        session = InferenceSession(
            graph, backend=backend, threads=threads, optimize=optimize,
            memory_budget_bytes=memory_budget_bytes, budget_mode=budget_mode)
        x = model_input(
            model_name, batch=at_batch, image_size=image_size, seed=seed)
        return session, x

    label = f"{model_name}/{backend_name}/t{threads}"
    used_batch = batch
    try:
        session, x = build(batch)
    except MemoryBudgetError:
        if budget_mode != "degrade" or batch <= 1:
            raise
        session, x = build(1)
        used_batch = 1
        label += "/degraded-batch-1"
    times = session.time(
        {"input": x}, repeats=repeats, warmup=warmup, deadline_ms=deadline_ms)
    max_abs_err: float | None = None
    if accuracy_vs is not None:
        graph = zoo.build(
            model_name, batch=used_batch, image_size=image_size, seed=seed)
        reference = InferenceSession(
            graph, backend=accuracy_vs, threads=threads, optimize=optimize)
        got = session.run({"input": x})
        want = reference.run({"input": x})
        max_abs_err = max(
            (float(np.max(np.abs(got[name].astype(np.float64)
                                 - want[name].astype(np.float64))))
             for name in want), default=0.0)
    return RunStats(
        label=label, times=tuple(times), max_abs_err=max_abs_err)
