"""Generic experiment runner: timed full-network inference with statistics.

This is the "infrastructure to run multiple inference experiments,
evaluating full networks" from the paper's contribution list, shared by the
Figure 2 driver, the ablation benchmarks, and the CLI ``bench`` command.

It also hosts the *failure boundary* the whole bench stack shares: partial
failures — unsupported ops, numerically unstable kernels, unavailable
frameworks — are the norm in edge evaluation, so sweeps convert framework
errors into structured :class:`FailureRow`\\ s (with bounded retry) and keep
measuring instead of aborting.
"""

from __future__ import annotations

import dataclasses
import statistics
from collections.abc import Callable
from typing import TypeVar

import numpy as np

from repro.backends.backend import Backend
from repro.bench.workloads import model_input
from repro.errors import OrpheusError
from repro.models import zoo
from repro.runtime.session import InferenceSession

T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class FailureRow:
    """One configuration a sweep could not measure — and why.

    Mirrors the paper's availability notes (DarkNet ships only the ResNets,
    TF-Lite cannot pin one thread): instead of aborting the sweep, the cell
    is reported as a structured failure.
    """

    label: str          # e.g. "darknet/mobilenet-v1" or "resnet18@batch=4"
    stage: str          # "prepare" | "warmup" | "run"
    error_type: str     # exception class name
    message: str
    attempts: int       # tries consumed (1 = no retry granted/needed)

    def __str__(self) -> str:
        retry = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return (f"FAILED {self.label} [{self.stage}] "
                f"{self.error_type}: {self.message}{retry}")


def run_guarded(
    fn: Callable[[], T],
    label: str,
    stage: str = "run",
    retries: int = 1,
    catch: tuple[type[BaseException], ...] = (OrpheusError,),
    reraise: tuple[type[BaseException], ...] = (),
) -> tuple[T | None, FailureRow | None]:
    """Call ``fn`` inside a failure boundary with bounded retry.

    Returns ``(result, None)`` on success or ``(None, FailureRow)`` once
    ``fn`` has failed ``retries + 1`` times with an exception from
    ``catch``. Exceptions outside ``catch`` (programming errors,
    ``KeyboardInterrupt``) propagate unchanged, as do ``reraise``
    subclasses even when they fall under ``catch`` (used to let expected,
    deterministic unavailability — exclusions — bypass the retry loop).
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return fn(), None
        except catch as exc:
            if isinstance(exc, reraise):
                raise
            if attempts > retries:
                return None, FailureRow(
                    label=label, stage=stage,
                    error_type=type(exc).__name__, message=str(exc),
                    attempts=attempts)


@dataclasses.dataclass(frozen=True)
class RunStats:
    """Timing statistics for one experiment configuration."""

    label: str
    times: tuple[float, ...]

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0

    def summary(self) -> str:
        return (f"{self.label}: median {self.median * 1e3:.2f} ms, "
                f"best {self.best * 1e3:.2f} ms, "
                f"stdev {self.stdev * 1e3:.2f} ms over {len(self.times)} runs")


def time_session(
    session: InferenceSession,
    feeds: dict[str, np.ndarray],
    repeats: int = 5,
    warmup: int = 1,
    label: str = "run",
) -> RunStats:
    """Warm up and time an already-prepared session."""
    times = session.time(feeds, repeats=repeats, warmup=warmup)
    return RunStats(label=label, times=tuple(times))


def time_model(
    model_name: str,
    backend: "str | Backend" = "orpheus",
    threads: int = 1,
    optimize: bool = True,
    repeats: int = 5,
    warmup: int = 1,
    batch: int = 1,
    image_size: int | None = None,
    seed: int = 0,
) -> RunStats:
    """Build, prepare, and time a zoo model end to end."""
    graph = zoo.build(model_name, batch=batch, image_size=image_size, seed=seed)
    session = InferenceSession(
        graph, backend=backend, threads=threads, optimize=optimize)
    x = model_input(model_name, batch=batch, image_size=image_size, seed=seed)
    backend_name = backend if isinstance(backend, str) else backend.name
    return time_session(
        session, {"input": x}, repeats=repeats, warmup=warmup,
        label=f"{model_name}/{backend_name}/t{threads}")
