"""The fp32-vs-int8 crossover benchmark behind ``BENCH_quant.json``.

Two row families, measured in one process so fp32 and int8 see the same
machine state:

``steady_state`` — batch-1 latency per zoo model, fp32 (``orpheus``) vs
``int8``, each int8 row carrying the accuracy proxy (max absolute output
error against the fp32 reference on the same input) and the weight-bytes
compression the quantized graph ships. On a single core both paths drive
the same BLAS at FLOP parity, so batch-1 speedups hover around 1x; the
rows are committed honestly rather than cherry-picked.

``budget_scenarios`` — the deployment case quantization actually wins:
batched inference under a memory budget sized between the int8 and fp32
activation plans. Admission control degrades the fp32 session to batch 1
(the label gains ``/degraded-batch-1``) while int8's ~4x-smaller uint8
activations still fit at full batch, so the *per-image* crossover is
structural, not a kernel micro-win. Per-image speedup ratios are
meaningful across machines even though absolute times are not — the same
caveat as ``BENCH_engine_startup.json``.
"""

from __future__ import annotations

import json
import platform
import sys

from repro import __version__
from repro.bench.harness import time_model

#: (model, image_size) steady-state configurations: every zoo model, at
#: sizes small enough that the whole sweep runs in tens of seconds.
STEADY_STATE_CONFIGS: tuple[tuple[str, int | None], ...] = (
    ("squeezenet", 64),
    ("mobilenet-v1", 64),
    ("wrn-40-2", None),
    ("resnet18", 64),
    ("resnet50", 64),
    ("inception-v3", 96),
)

#: (model, image_size, batch, budget_bytes) deployment scenarios. Budgets
#: sit between the int8 and fp32 planned activation footprints (measured:
#: mobilenet-v1@64 b32 plans 12.0 MiB fp32 / 3.0 MiB int8; squeezenet@64
#: 9.8 / 7.0; squeezenet@96 22.1 / 16.5), so fp32 degrades to batch 1 and
#: int8 keeps the batch.
BUDGET_SCENARIOS: tuple[tuple[str, int, int, int], ...] = (
    ("mobilenet-v1", 64, 32, 4 * 2**20),
    ("squeezenet", 64, 32, 8 * 2**20),
    ("squeezenet", 96, 32, 20 * 2**20),
)


def _weight_bytes(model: str, image_size: int | None,
                  backend: str) -> tuple[int, dict[str, int] | None]:
    """Initializer payload of the prepared graph, plus the quant report."""
    from repro.models import zoo
    from repro.runtime.session import InferenceSession

    graph = zoo.build(model, image_size=image_size)
    session = InferenceSession(graph, backend=backend)
    total = sum(array.nbytes
                for array in session.graph.initializers.values())
    return total, session.quantization


def measure_quant_crossover(
    configs=None,
    scenarios=None,
    repeats: int = 7,
    warmup: int = 1,
) -> dict:
    """Run both row families; returns the ``BENCH_quant.json`` document."""
    if configs is None:  # resolved at call time so tests can patch the set
        configs = STEADY_STATE_CONFIGS
    if scenarios is None:
        scenarios = BUDGET_SCENARIOS

    steady = {}
    for model, image_size in configs:
        fp32 = time_model(model, backend="orpheus", image_size=image_size,
                          repeats=repeats, warmup=warmup)
        int8 = time_model(model, backend="int8", image_size=image_size,
                          repeats=repeats, warmup=warmup,
                          accuracy_vs="orpheus")
        fp32_bytes, _ = _weight_bytes(model, image_size, "orpheus")
        int8_bytes, report = _weight_bytes(model, image_size, "int8")
        # Derive the ratio from the rounded fields so the document is
        # internally consistent: speedup == fp32_median_ms / int8_median_ms.
        fp32_ms = round(fp32.median * 1e3, 4)
        int8_ms = round(int8.median * 1e3, 4)
        steady[f"{model}/{image_size or 'full'}"] = {
            "model": model,
            "image_size": image_size,
            "fp32_median_ms": fp32_ms,
            "int8_median_ms": int8_ms,
            "speedup": round(fp32_ms / int8_ms, 4),
            "max_abs_err": float(f"{int8.max_abs_err:.6g}"),
            "fp32_weight_bytes": fp32_bytes,
            "int8_weight_bytes": int8_bytes,
            "quantization": report,
        }

    budget = {}
    for model, image_size, batch, budget_bytes in scenarios:
        fp32 = time_model(
            model, backend="orpheus", image_size=image_size, batch=batch,
            repeats=repeats, warmup=warmup,
            memory_budget_bytes=budget_bytes, budget_mode="degrade")
        int8 = time_model(
            model, backend="int8", image_size=image_size, batch=batch,
            repeats=repeats, warmup=warmup,
            memory_budget_bytes=budget_bytes, budget_mode="degrade",
            accuracy_vs="orpheus")
        fp32_degraded = fp32.label.endswith("/degraded-batch-1")
        int8_degraded = int8.label.endswith("/degraded-batch-1")
        fp32_per_image = fp32.median / (1 if fp32_degraded else batch)
        int8_per_image = int8.median / (1 if int8_degraded else batch)
        key = f"{model}/{image_size}/b{batch}/{budget_bytes // 2**20}MiB"
        budget[key] = {
            "model": model,
            "image_size": image_size,
            "batch": batch,
            "budget_bytes": budget_bytes,
            "fp32_label": fp32.label,
            "int8_label": int8.label,
            "fp32_per_image_ms": round(fp32_per_image * 1e3, 4),
            "int8_per_image_ms": round(int8_per_image * 1e3, 4),
            "per_image_speedup": round(
                round(fp32_per_image * 1e3, 4) / round(int8_per_image * 1e3, 4),
                4),
            "max_abs_err": float(f"{int8.max_abs_err:.6g}"),
        }

    return {
        "version": __version__,
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "repeats": repeats,
        "steady_state": steady,
        "budget_scenarios": budget,
    }


def save_quant_bench(path: str, **kwargs) -> dict:
    """:func:`measure_quant_crossover`, saved as pretty JSON."""
    document = measure_quant_crossover(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def format_quant_bench(document: dict) -> str:
    """The quant-crossover document as an aligned text report."""
    lines = [f"fp32 vs int8 crossover, median of {document['repeats']}:",
             "steady state (batch 1):",
             f"  {'config':22s} {'fp32 (ms)':>10s} {'int8 (ms)':>10s} "
             f"{'speedup':>8s} {'max|err|':>10s} {'weights':>14s}"]
    for key, row in document["steady_state"].items():
        ratio = row["fp32_weight_bytes"] / max(1, row["int8_weight_bytes"])
        lines.append(
            f"  {key:22s} {row['fp32_median_ms']:10.2f} "
            f"{row['int8_median_ms']:10.2f} {row['speedup']:7.2f}x "
            f"{row['max_abs_err']:10.3g} "
            f"{row['int8_weight_bytes'] / 2**20:7.2f} MiB "
            f"({ratio:.1f}x)")
    lines.append("memory-budget deployment (per image):")
    lines.append(
        f"  {'scenario':30s} {'fp32 (ms)':>10s} {'int8 (ms)':>10s} "
        f"{'speedup':>8s}  note")
    for key, row in document["budget_scenarios"].items():
        note = ("fp32 degraded to batch 1"
                if row["fp32_label"].endswith("/degraded-batch-1")
                else "fp32 kept the batch")
        lines.append(
            f"  {key:30s} {row['fp32_per_image_ms']:10.2f} "
            f"{row['int8_per_image_ms']:10.2f} "
            f"{row['per_image_speedup']:7.2f}x  {note}")
    return "\n".join(lines)
