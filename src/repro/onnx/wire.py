"""Protocol-buffers wire format, from scratch.

ONNX models are protobuf messages; to keep the framework dependency-free
(the paper's "minimal dependencies" design goal) this module implements the
wire format directly: varints, the four wire types, tagged fields, packed
repeated scalars. Schema knowledge lives in :mod:`repro.onnx.schema`; this
module is schema-agnostic.

Reference: https://protobuf.dev/programming-guides/encoding/
"""

from __future__ import annotations

import struct
from collections.abc import Iterator, Sequence

from repro.errors import WireFormatError

# Wire types
VARINT = 0
FIXED64 = 1
LENGTH_DELIMITED = 2
FIXED32 = 5

#: Hard cap on nested-message depth. Model files cross the trust boundary,
#: and a hostile payload nesting submessages thousands of levels deep must
#: exhaust this explicit limit (a catchable WireFormatError), never the
#: Python stack (RecursionError). The schema's deepest legitimate chain
#: (Model > Graph > Node > Attribute > Tensor) is nowhere near this.
MAX_MESSAGE_DEPTH = 64

_WIRE_TYPE_NAMES = {VARINT: "varint", FIXED64: "fixed64",
                    LENGTH_DELIMITED: "length-delimited", FIXED32: "fixed32"}


# ---------------------------------------------------------------------------
# varints
# ---------------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if value < 0:
        raise WireFormatError(
            f"varint cannot encode negative value {value}; "
            "use encode_signed_varint for int64 two's-complement semantics")
    out = bytearray()
    while True:
        bits = value & 0x7F
        value >>= 7
        if value:
            out.append(bits | 0x80)
        else:
            out.append(bits)
            return bytes(out)


def encode_signed_varint(value: int) -> bytes:
    """Encode a possibly-negative int64 (two's complement, 10 bytes max)."""
    if value < 0:
        value += 1 << 64
    return encode_varint(value)


def decode_varint(data: bytes, pos: int = 0) -> tuple[int, int]:
    """Decode a varint at ``pos``; returns (value, new_pos)."""
    result = 0
    shift = 0
    start = pos
    while True:
        if pos >= len(data):
            raise WireFormatError(f"truncated varint at offset {start}")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift >= 70:
            raise WireFormatError(f"varint longer than 10 bytes at offset {start}")


def decode_signed_varint(data: bytes, pos: int = 0) -> tuple[int, int]:
    """Decode a varint, interpreting it as a two's-complement int64."""
    value, pos = decode_varint(data, pos)
    if value >= 1 << 63:
        value -= 1 << 64
    return value, pos


def encode_zigzag(value: int) -> int:
    """ZigZag-map a signed integer (sint32/sint64 fields)."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def decode_zigzag(value: int) -> int:
    """Inverse ZigZag mapping."""
    return (value >> 1) ^ -(value & 1)


# ---------------------------------------------------------------------------
# tags and fields
# ---------------------------------------------------------------------------


def encode_tag(field_number: int, wire_type: int) -> bytes:
    if field_number < 1:
        raise WireFormatError(f"invalid field number {field_number}")
    if wire_type not in _WIRE_TYPE_NAMES:
        raise WireFormatError(f"invalid wire type {wire_type}")
    return encode_varint((field_number << 3) | wire_type)


def decode_tag(data: bytes, pos: int) -> tuple[int, int, int]:
    """Decode a tag; returns (field_number, wire_type, new_pos)."""
    key, pos = decode_varint(data, pos)
    field_number = key >> 3
    wire_type = key & 0x7
    if field_number < 1:
        raise WireFormatError(f"invalid field number {field_number} in tag")
    if wire_type not in _WIRE_TYPE_NAMES:
        raise WireFormatError(
            f"unsupported wire type {wire_type} for field {field_number}")
    return field_number, wire_type, pos


class MessageWriter:
    """Accumulates tagged fields into protobuf message bytes."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    def varint(self, field: int, value: int) -> "MessageWriter":
        self._chunks.append(encode_tag(field, VARINT))
        self._chunks.append(encode_signed_varint(int(value)))
        return self

    def fixed32(self, field: int, value: float) -> "MessageWriter":
        self._chunks.append(encode_tag(field, FIXED32))
        self._chunks.append(struct.pack("<f", value))
        return self

    def fixed64(self, field: int, value: float) -> "MessageWriter":
        self._chunks.append(encode_tag(field, FIXED64))
        self._chunks.append(struct.pack("<d", value))
        return self

    def bytes_field(self, field: int, value: bytes) -> "MessageWriter":
        self._chunks.append(encode_tag(field, LENGTH_DELIMITED))
        self._chunks.append(encode_varint(len(value)))
        self._chunks.append(value)
        return self

    def string(self, field: int, value: str) -> "MessageWriter":
        return self.bytes_field(field, value.encode("utf-8"))

    def message(self, field: int, value: "bytes | MessageWriter") -> "MessageWriter":
        if isinstance(value, MessageWriter):
            value = value.finish()
        return self.bytes_field(field, value)

    def packed_varints(self, field: int, values: Sequence[int]) -> "MessageWriter":
        body = b"".join(encode_signed_varint(int(v)) for v in values)
        return self.bytes_field(field, body)

    def packed_floats(self, field: int, values: Sequence[float]) -> "MessageWriter":
        return self.bytes_field(field, struct.pack(f"<{len(values)}f", *values))

    def packed_doubles(self, field: int, values: Sequence[float]) -> "MessageWriter":
        return self.bytes_field(field, struct.pack(f"<{len(values)}d", *values))

    def finish(self) -> bytes:
        return b"".join(self._chunks)


Field = tuple[int, int, "int | bytes"]


def iter_fields(data: bytes, depth: int = 0) -> Iterator[Field]:
    """Yield (field_number, wire_type, raw_value) for each field in ``data``.

    Varint/fixed values come out as ints (fixed ones as raw little-endian
    ints — reinterpret with :func:`fixed32_to_float` etc.); length-delimited
    values come out as bytes.

    ``depth`` is the message-nesting level: callers recursing into a
    submessage pass ``depth + 1``, and depths beyond
    :data:`MAX_MESSAGE_DEPTH` are rejected with a
    :class:`~repro.errors.WireFormatError` before any field is decoded.
    Declared lengths are always validated against the remaining buffer, so
    a truncated or lying length prefix can never trigger an oversized
    slice.
    """
    if depth > MAX_MESSAGE_DEPTH:
        raise WireFormatError(
            f"message nesting deeper than {MAX_MESSAGE_DEPTH} levels "
            "(hostile or corrupt payload)")
    # This loop is the decode hot path (every model/engine load walks it
    # once per field), so the overwhelmingly common single-byte varints —
    # field numbers below 16, values and lengths below 128 — are decoded
    # inline instead of through decode_tag/decode_varint calls.
    pos = 0
    end = len(data)
    while pos < end:
        key = data[pos]
        if key < 0x80:
            pos += 1
        else:
            key, pos = decode_varint(data, pos)
        field_number = key >> 3
        wire_type = key & 0x7
        if field_number < 1:
            raise WireFormatError(f"invalid field number {field_number} in tag")
        if wire_type == LENGTH_DELIMITED:
            if pos < end and data[pos] < 0x80:
                length = data[pos]
                pos += 1
            else:
                length, pos = decode_varint(data, pos)
            if length > end - pos:
                raise WireFormatError(
                    f"length-delimited field {field_number} overruns the "
                    f"buffer: declares {length} bytes with only "
                    f"{end - pos} remaining at offset {pos}")
            yield field_number, wire_type, data[pos:pos + length]
            pos += length
        elif wire_type == VARINT:
            if pos < end and data[pos] < 0x80:
                value = data[pos]
                pos += 1
            else:
                value, pos = decode_varint(data, pos)
            yield field_number, wire_type, value
        elif wire_type == FIXED64:
            if pos + 8 > end:
                raise WireFormatError(f"truncated fixed64 in field {field_number}")
            yield field_number, wire_type, int.from_bytes(data[pos:pos + 8], "little")
            pos += 8
        elif wire_type == FIXED32:
            if pos + 4 > end:
                raise WireFormatError(f"truncated fixed32 in field {field_number}")
            yield field_number, wire_type, int.from_bytes(data[pos:pos + 4], "little")
            pos += 4
        else:
            raise WireFormatError(
                f"unsupported wire type {wire_type} for field {field_number}")


def fixed32_to_float(raw: int) -> float:
    return struct.unpack("<f", raw.to_bytes(4, "little"))[0]


def fixed64_to_double(raw: int) -> float:
    return struct.unpack("<d", raw.to_bytes(8, "little"))[0]


def varint_to_int64(raw: int) -> int:
    return raw - (1 << 64) if raw >= 1 << 63 else raw


def decode_packed_varints(data: bytes) -> list[int]:
    """Decode a packed repeated int64 field body."""
    values = []
    pos = 0
    while pos < len(data):
        value, pos = decode_varint(data, pos)
        values.append(varint_to_int64(value))
    return values


def decode_packed_floats(data: bytes) -> list[float]:
    if len(data) % 4:
        raise WireFormatError(f"packed float body of {len(data)} bytes")
    return list(struct.unpack(f"<{len(data) // 4}f", data))


def decode_packed_doubles(data: bytes) -> list[float]:
    if len(data) % 8:
        raise WireFormatError(f"packed double body of {len(data)} bytes")
    return list(struct.unpack(f"<{len(data) // 8}d", data))
