"""ONNX import: model bytes -> framework :class:`~repro.ir.graph.Graph`.

This is the paper's "system to parse pre-trained models exported to the
ONNX format from popular training frameworks". The op set is validated
against the runtime's shape-inference registry, so unsupported models fail
at import with a clear message rather than mid-execution.
"""

from __future__ import annotations

from repro.errors import OnnxError, UnsupportedOpError
from repro.ir.graph import Graph, ValueInfo
from repro.ir.node import Node
from repro.ir.shape_inference import has_shape_fn
from repro.ops import validate_node
from repro.onnx.schema import GraphProto, ModelProto, ValueInfoProto
from repro.tensor.dtype import DType

#: Hard cap on graph size. Model files cross the trust boundary; a hostile
#: GraphProto enumerating millions of nodes must fail with a catchable
#: OnnxError before per-node validation starts chewing through them.
MAX_GRAPH_NODES = 100_000


def _value_info(proto: ValueInfoProto) -> ValueInfo:
    # Fuzz finding: a bitflip can blank the name or scramble the dtype
    # code; both must surface as OnnxError at the ingestion boundary, not
    # as the IR's internal ValueError.
    if not proto.name:
        raise OnnxError("graph input/output without a name (corrupt model)")
    dims = tuple(-1 if isinstance(dim, str) or dim < 0 else int(dim)
                 for dim in proto.dims)
    try:
        dtype = DType.from_onnx(proto.elem_type)
    except ValueError as exc:
        raise OnnxError(f"value {proto.name!r}: {exc}") from exc
    return ValueInfo(proto.name, dims, dtype)


def graph_from_proto(proto: GraphProto) -> Graph:
    """Convert a parsed GraphProto into a validated framework graph."""
    if len(proto.node) > MAX_GRAPH_NODES:
        raise OnnxError(
            f"graph declares {len(proto.node)} nodes, over the "
            f"{MAX_GRAPH_NODES} cap (hostile or corrupt model)")
    initializers = {}
    for tensor in proto.initializer:
        if not tensor.name:
            raise OnnxError("initializer without a name")
        initializers[tensor.name] = tensor.to_numpy()
    # ONNX lists initializers in graph.input too; real inputs are the rest.
    inputs = [
        _value_info(info) for info in proto.input
        if info.name not in initializers
    ]
    outputs = [_value_info(info) for info in proto.output]
    nodes = []
    for node_proto in proto.node:
        if node_proto.domain not in ("", "ai.onnx"):
            raise UnsupportedOpError(
                f"node {node_proto.name!r}: unsupported domain "
                f"{node_proto.domain!r}")
        if not has_shape_fn(node_proto.op_type):
            raise UnsupportedOpError(
                f"unsupported ONNX op {node_proto.op_type!r} "
                f"(node {node_proto.name!r})")
        if not node_proto.output:
            raise OnnxError(
                f"node {node_proto.name!r} ({node_proto.op_type}) declares "
                "no outputs")
        attrs = {attr.name: attr.to_value() for attr in node_proto.attribute}
        node = Node(
            op_type=node_proto.op_type,
            inputs=list(node_proto.input),
            outputs=list(node_proto.output),
            attrs=attrs,
            name=node_proto.name,
        )
        validate_node(node)
        nodes.append(node)
    graph = Graph(
        name=proto.name or "imported",
        inputs=inputs,
        outputs=outputs,
        nodes=nodes,
        initializers=initializers,
    )
    graph.validate()
    return graph


def load_model_bytes(data: bytes) -> Graph:
    """Parse serialized ONNX ``ModelProto`` bytes into a framework graph."""
    model = ModelProto.parse(data)
    if model.graph is None:
        raise OnnxError("model has no graph")
    for opset in model.opset_import:
        if opset.domain in ("", "ai.onnx") and not 1 <= opset.version <= 21:
            raise OnnxError(f"unsupported default-domain opset {opset.version}")
    return graph_from_proto(model.graph)


def load_model(path: str) -> Graph:
    """Load an ``.onnx`` file from disk."""
    with open(path, "rb") as handle:
        return load_model_bytes(handle.read())
