"""ONNX export: framework :class:`~repro.ir.graph.Graph` -> model bytes.

Round-tripping through the exporter and importer is the contract the
test suite enforces: ``load_model_bytes(save_model_bytes(g))`` must be
semantically identical to ``g``.
"""

from __future__ import annotations

from repro.errors import OnnxError
from repro.ir.graph import Graph, ValueInfo
from repro.onnx.schema import (
    AttributeProto,
    GraphProto,
    ModelProto,
    NodeProto,
    OperatorSetIdProto,
    TensorProto,
    ValueInfoProto,
)

_EXPORT_OPSET = 13

# Framework-private attributes that must not leak into ONNX files.
_INTERNAL_ATTRS = frozenset({"activation"})


def _value_info_proto(info: ValueInfo) -> ValueInfoProto:
    return ValueInfoProto(
        name=info.name,
        elem_type=info.dtype.onnx_code,
        dims=[dim if dim >= 0 else f"dyn_{axis}"
              for axis, dim in enumerate(info.shape)],
    )


def graph_to_proto(graph: Graph, internal: bool = False) -> GraphProto:
    """Convert a framework graph into a GraphProto.

    ``internal=True`` permits framework-private attributes (the fused
    ``activation`` marker) in the output — used by the engine serializer
    (:mod:`repro.engine`), whose files never leave the framework. Plain
    ONNX export keeps rejecting them so optimised graphs cannot leak
    non-standard attributes into ``.onnx`` files.
    """
    graph.validate()
    proto = GraphProto(name=graph.name)
    for node in graph.nodes:
        attrs = []
        for name in sorted(node.attrs.keys()):
            if name in _INTERNAL_ATTRS and not internal:
                raise OnnxError(
                    f"node {node.name!r} carries framework-internal attribute "
                    f"{name!r}; export the unoptimised graph")
            attrs.append(AttributeProto.from_value(
                name, node.attrs.as_dict()[name]))
        proto.node.append(NodeProto(
            input=list(node.inputs),
            output=list(node.outputs),
            name=node.name,
            op_type=node.op_type,
            attribute=attrs,
        ))
    for name, array in graph.initializers.items():
        proto.initializer.append(TensorProto.from_numpy(array, name=name))
    for info in graph.inputs:
        proto.input.append(_value_info_proto(info))
    for info in graph.outputs:
        proto.output.append(_value_info_proto(info))
    return proto


def save_model_bytes(graph: Graph, internal: bool = False) -> bytes:
    """Serialize ``graph`` as ONNX ``ModelProto`` bytes.

    ``internal=True`` is the engine serializer's escape hatch for
    framework-private attributes; see :func:`graph_to_proto`.
    """
    model = ModelProto(
        graph=graph_to_proto(graph, internal=internal),
        opset_import=[OperatorSetIdProto(domain="", version=_EXPORT_OPSET)],
    )
    return model.serialize()


def save_model(graph: Graph, path: str) -> None:
    """Write ``graph`` to an ``.onnx`` file."""
    data = save_model_bytes(graph)
    with open(path, "wb") as handle:
        handle.write(data)
