"""ONNX interop: from-scratch protobuf codec, importer, exporter."""

from repro.onnx.reader import graph_from_proto, load_model, load_model_bytes
from repro.onnx.schema import (
    AttributeProto,
    GraphProto,
    ModelProto,
    NodeProto,
    OperatorSetIdProto,
    TensorProto,
    ValueInfoProto,
)
from repro.onnx.writer import graph_to_proto, save_model, save_model_bytes

__all__ = [
    "AttributeProto",
    "GraphProto",
    "ModelProto",
    "NodeProto",
    "OperatorSetIdProto",
    "TensorProto",
    "ValueInfoProto",
    "graph_from_proto",
    "graph_to_proto",
    "load_model",
    "load_model_bytes",
    "save_model",
    "save_model_bytes",
]
