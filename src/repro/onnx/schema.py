"""The ONNX protobuf schema subset, as plain dataclasses.

Field numbers follow ``onnx.proto3`` and are stable across ONNX releases.
Each proto class knows how to parse itself from message bytes and serialize
itself back, through the wire codec in :mod:`repro.onnx.wire`. Only the
messages and fields the importer/exporter needs are modelled; unknown
fields are skipped on parse (protobuf's forward-compatibility rule).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import OnnxError
from repro.onnx import wire
from repro.onnx.wire import (
    FIXED32,
    FIXED64,
    LENGTH_DELIMITED,
    VARINT,
    MessageWriter,
    iter_fields,
)
from repro.tensor.dtype import DType


def _expect(wire_type: int, expected: int, message: str, field: int) -> None:
    if wire_type != expected:
        raise OnnxError(
            f"{message}: field {field} has wire type {wire_type}, "
            f"expected {expected}")


def _string(value: "int | bytes", message: str, field: int) -> str:
    if not isinstance(value, bytes):
        raise OnnxError(f"{message}: field {field} is not length-delimited")
    return value.decode("utf-8")


def _bytes(value: "int | bytes", message: str, field: int) -> bytes:
    """Nested-message payload: must be length-delimited."""
    if not isinstance(value, bytes):
        raise OnnxError(f"{message}: field {field} is not a submessage")
    return value


# ---------------------------------------------------------------------------
# TensorProto
# ---------------------------------------------------------------------------

#: Hard cap on declared tensor elements. A hostile TensorProto can declare
#: dims whose product is astronomical while carrying a few bytes of data;
#: the cap turns that into an OnnxError before any allocation is attempted.
MAX_TENSOR_ELEMENTS = 1 << 31

# TensorProto.DataType codes -> numpy dtypes (the supported subset).
_TENSOR_DTYPES: dict[int, np.dtype] = {
    1: np.dtype(np.float32),
    2: np.dtype(np.uint8),
    3: np.dtype(np.int8),
    6: np.dtype(np.int32),
    7: np.dtype(np.int64),
    9: np.dtype(np.bool_),
    10: np.dtype(np.float16),
    11: np.dtype(np.float64),
}


@dataclasses.dataclass
class TensorProto:
    """ONNX TensorProto: a constant tensor (weights, attribute values)."""

    name: str = ""
    dims: tuple[int, ...] = ()
    data_type: int = 1
    raw_data: bytes | None = None
    float_data: list[float] = dataclasses.field(default_factory=list)
    int32_data: list[int] = dataclasses.field(default_factory=list)
    int64_data: list[int] = dataclasses.field(default_factory=list)
    double_data: list[float] = dataclasses.field(default_factory=list)

    @classmethod
    def parse(cls, data: bytes, depth: int = 0) -> "TensorProto":
        proto = cls()
        dims: list[int] = []
        for field, wire_type, value in iter_fields(data, depth):
            if field == 1:  # dims
                if wire_type == VARINT:
                    dims.append(wire.varint_to_int64(value))
                elif wire_type == LENGTH_DELIMITED:  # packed
                    dims.extend(wire.decode_packed_varints(value))
                else:
                    raise OnnxError(
                        f"TensorProto.dims: invalid wire type {wire_type}")
            elif field == 2 and wire_type == VARINT:
                proto.data_type = value
            elif field == 4:  # float_data (packed)
                _expect(wire_type, LENGTH_DELIMITED, "TensorProto.float_data", field)
                proto.float_data.extend(wire.decode_packed_floats(value))
            elif field == 5:
                _expect(wire_type, LENGTH_DELIMITED, "TensorProto.int32_data", field)
                proto.int32_data.extend(wire.decode_packed_varints(value))
            elif field == 7:
                _expect(wire_type, LENGTH_DELIMITED, "TensorProto.int64_data", field)
                proto.int64_data.extend(wire.decode_packed_varints(value))
            elif field == 8:
                proto.name = _string(value, "TensorProto.name", field)
            elif field == 9:
                _expect(wire_type, LENGTH_DELIMITED, "TensorProto.raw_data", field)
                proto.raw_data = bytes(value)
            elif field == 10:
                _expect(wire_type, LENGTH_DELIMITED, "TensorProto.double_data", field)
                proto.double_data.extend(wire.decode_packed_doubles(value))
            # other fields (segment, string_data, externals) are skipped
        proto.dims = tuple(dims)
        return proto

    def serialize(self) -> bytes:
        writer = MessageWriter()
        for dim in self.dims:
            writer.varint(1, dim)
        writer.varint(2, self.data_type)
        if self.float_data:
            writer.packed_floats(4, self.float_data)
        if self.int32_data:
            writer.packed_varints(5, self.int32_data)
        if self.int64_data:
            writer.packed_varints(7, self.int64_data)
        if self.name:
            writer.string(8, self.name)
        if self.raw_data is not None:
            writer.bytes_field(9, self.raw_data)
        if self.double_data:
            writer.packed_doubles(10, self.double_data)
        return writer.finish()

    # -- numpy bridge ------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """Materialise as a numpy array (raw or typed data fields)."""
        dtype = _TENSOR_DTYPES.get(self.data_type)
        if dtype is None:
            raise OnnxError(
                f"tensor {self.name!r}: unsupported data_type {self.data_type}")
        count = 1
        for dim in self.dims:
            if dim < 0:
                raise OnnxError(
                    f"tensor {self.name!r}: negative dimension {dim} "
                    f"in dims {tuple(self.dims)}")
            count *= dim
        if count > MAX_TENSOR_ELEMENTS:
            raise OnnxError(
                f"tensor {self.name!r}: dims {tuple(self.dims)} declare "
                f"{count} elements, over the {MAX_TENSOR_ELEMENTS} cap "
                "(hostile or corrupt model)")
        if self.raw_data is not None:
            if len(self.raw_data) % dtype.itemsize:
                raise OnnxError(
                    f"tensor {self.name!r}: raw_data of {len(self.raw_data)} "
                    f"bytes is not a whole number of {dtype} elements "
                    f"({dtype.itemsize} bytes each)")
            array = np.frombuffer(self.raw_data, dtype=dtype)
        elif self.float_data and self.data_type == 1:
            array = np.asarray(self.float_data, dtype=dtype)
        elif self.double_data and self.data_type == 11:
            array = np.asarray(self.double_data, dtype=dtype)
        elif self.int64_data and self.data_type == 7:
            array = np.asarray(self.int64_data, dtype=dtype)
        elif self.int32_data and self.data_type in (2, 3, 6, 9):
            array = np.asarray(self.int32_data, dtype=np.int32).astype(dtype)
        elif count == 0:
            array = np.empty(0, dtype=dtype)
        else:
            raise OnnxError(f"tensor {self.name!r} carries no data")
        if array.size != count:
            raise OnnxError(
                f"tensor {self.name!r}: {array.size} elements, dims say {count}")
        return array.reshape(self.dims).copy()

    @classmethod
    def from_numpy(cls, array: np.ndarray, name: str = "") -> "TensorProto":
        dtype = DType.from_numpy(array.dtype)
        return cls(
            name=name,
            dims=tuple(int(dim) for dim in array.shape),
            data_type=dtype.onnx_code,
            raw_data=np.ascontiguousarray(array).tobytes(),
        )


# ---------------------------------------------------------------------------
# AttributeProto
# ---------------------------------------------------------------------------

ATTR_FLOAT = 1
ATTR_INT = 2
ATTR_STRING = 3
ATTR_TENSOR = 4
ATTR_FLOATS = 6
ATTR_INTS = 7
ATTR_STRINGS = 8


@dataclasses.dataclass
class AttributeProto:
    """ONNX AttributeProto (the scalar/list/tensor subset)."""

    name: str = ""
    type: int = 0
    f: float = 0.0
    i: int = 0
    s: bytes = b""
    t: TensorProto | None = None
    floats: list[float] = dataclasses.field(default_factory=list)
    ints: list[int] = dataclasses.field(default_factory=list)
    strings: list[bytes] = dataclasses.field(default_factory=list)

    @classmethod
    def parse(cls, data: bytes, depth: int = 0) -> "AttributeProto":
        proto = cls()
        for field, wire_type, value in iter_fields(data, depth):
            if field == 1:
                proto.name = _string(value, "AttributeProto.name", field)
            elif field == 2 and wire_type == FIXED32:
                proto.f = wire.fixed32_to_float(value)
            elif field == 3 and wire_type == VARINT:
                proto.i = wire.varint_to_int64(value)
            elif field == 4:
                _expect(wire_type, LENGTH_DELIMITED, "AttributeProto.s", field)
                proto.s = bytes(value)
            elif field == 5:
                _expect(wire_type, LENGTH_DELIMITED, "AttributeProto.t", field)
                proto.t = TensorProto.parse(
                    _bytes(value, "AttributeProto.t", field), depth + 1)
            elif field == 7:
                if wire_type == FIXED32:
                    proto.floats.append(wire.fixed32_to_float(value))
                elif wire_type == LENGTH_DELIMITED:
                    proto.floats.extend(wire.decode_packed_floats(value))
                else:
                    raise OnnxError(
                        f"AttributeProto.floats: invalid wire type {wire_type}")
            elif field == 8:
                if wire_type == VARINT:
                    proto.ints.append(wire.varint_to_int64(value))
                elif wire_type == LENGTH_DELIMITED:
                    proto.ints.extend(wire.decode_packed_varints(value))
                else:
                    raise OnnxError(
                        f"AttributeProto.ints: invalid wire type {wire_type}")
            elif field == 9:
                _expect(wire_type, LENGTH_DELIMITED, "AttributeProto.strings", field)
                proto.strings.append(bytes(value))
            elif field == 20 and wire_type == VARINT:
                proto.type = value
        return proto

    def serialize(self) -> bytes:
        writer = MessageWriter()
        writer.string(1, self.name)
        if self.type == ATTR_FLOAT:
            writer.fixed32(2, self.f)
        elif self.type == ATTR_INT:
            writer.varint(3, self.i)
        elif self.type == ATTR_STRING:
            writer.bytes_field(4, self.s)
        elif self.type == ATTR_TENSOR:
            if self.t is None:
                raise OnnxError(f"attribute {self.name!r}: TENSOR type, no tensor")
            writer.message(5, self.t.serialize())
        elif self.type == ATTR_FLOATS:
            writer.packed_floats(7, self.floats)
        elif self.type == ATTR_INTS:
            writer.packed_varints(8, self.ints)
        elif self.type == ATTR_STRINGS:
            for item in self.strings:
                writer.bytes_field(9, item)
        else:
            raise OnnxError(f"attribute {self.name!r}: unsupported type {self.type}")
        writer.varint(20, self.type)
        return writer.finish()

    # -- bridge to framework attribute values ------------------------------------

    def to_value(self) -> object:
        kind = self.type or self._guess_type()
        if kind == ATTR_FLOAT:
            return self.f
        if kind == ATTR_INT:
            return self.i
        if kind == ATTR_STRING:
            return self.s.decode("utf-8")
        if kind == ATTR_TENSOR:
            if self.t is None:
                raise OnnxError(f"attribute {self.name!r}: TENSOR type, no tensor")
            return self.t.to_numpy()
        if kind == ATTR_FLOATS:
            return tuple(self.floats)
        if kind == ATTR_INTS:
            return tuple(self.ints)
        if kind == ATTR_STRINGS:
            return tuple(item.decode("utf-8") for item in self.strings)
        raise OnnxError(f"attribute {self.name!r}: unsupported type {kind}")

    def _guess_type(self) -> int:
        if self.ints:
            return ATTR_INTS
        if self.floats:
            return ATTR_FLOATS
        if self.t is not None:
            return ATTR_TENSOR
        if self.s:
            return ATTR_STRING
        return ATTR_INT

    @classmethod
    def from_value(cls, name: str, value: object) -> "AttributeProto":
        if isinstance(value, bool):
            return cls(name=name, type=ATTR_INT, i=int(value))
        if isinstance(value, int):
            return cls(name=name, type=ATTR_INT, i=value)
        if isinstance(value, float):
            return cls(name=name, type=ATTR_FLOAT, f=value)
        if isinstance(value, str):
            return cls(name=name, type=ATTR_STRING, s=value.encode("utf-8"))
        if isinstance(value, np.ndarray):
            return cls(name=name, type=ATTR_TENSOR, t=TensorProto.from_numpy(value))
        if isinstance(value, (list, tuple)):
            items = list(value)
            if all(isinstance(item, int) for item in items):
                return cls(name=name, type=ATTR_INTS, ints=[int(i) for i in items])
            if all(isinstance(item, (int, float)) for item in items):
                return cls(name=name, type=ATTR_FLOATS,
                           floats=[float(i) for i in items])
            if all(isinstance(item, str) for item in items):
                return cls(name=name, type=ATTR_STRINGS,
                           strings=[item.encode("utf-8") for item in items])
        raise OnnxError(f"attribute {name!r}: cannot map {type(value).__name__}")


# ---------------------------------------------------------------------------
# NodeProto
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class NodeProto:
    input: list[str] = dataclasses.field(default_factory=list)
    output: list[str] = dataclasses.field(default_factory=list)
    name: str = ""
    op_type: str = ""
    attribute: list[AttributeProto] = dataclasses.field(default_factory=list)
    domain: str = ""

    @classmethod
    def parse(cls, data: bytes, depth: int = 0) -> "NodeProto":
        proto = cls()
        for field, _wire_type, value in iter_fields(data, depth):
            if field == 1:
                proto.input.append(_string(value, "NodeProto.input", field))
            elif field == 2:
                proto.output.append(_string(value, "NodeProto.output", field))
            elif field == 3:
                proto.name = _string(value, "NodeProto.name", field)
            elif field == 4:
                proto.op_type = _string(value, "NodeProto.op_type", field)
            elif field == 5:
                proto.attribute.append(AttributeProto.parse(
                    _bytes(value, "NodeProto.attribute", field), depth + 1))
            elif field == 7:
                proto.domain = _string(value, "NodeProto.domain", field)
        return proto

    def serialize(self) -> bytes:
        writer = MessageWriter()
        for name in self.input:
            writer.string(1, name)
        for name in self.output:
            writer.string(2, name)
        if self.name:
            writer.string(3, self.name)
        writer.string(4, self.op_type)
        for attr in self.attribute:
            writer.message(5, attr.serialize())
        if self.domain:
            writer.string(7, self.domain)
        return writer.finish()


# ---------------------------------------------------------------------------
# ValueInfoProto (with the nested TypeProto/TensorShapeProto flattened)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ValueInfoProto:
    name: str = ""
    elem_type: int = 1
    # dims: ints for fixed sizes, strings for symbolic ("batch") dims
    dims: list["int | str"] = dataclasses.field(default_factory=list)

    @classmethod
    def parse(cls, data: bytes, depth: int = 0) -> "ValueInfoProto":
        proto = cls()
        for field, _wire_type, value in iter_fields(data, depth):
            if field == 1:
                proto.name = _string(value, "ValueInfoProto.name", field)
            elif field == 2:  # TypeProto
                proto._parse_type(
                    _bytes(value, "ValueInfoProto.type", field), depth + 1)
        return proto

    def _parse_type(self, data: bytes, depth: int) -> None:
        for field, _wire_type, value in iter_fields(data, depth):
            if field == 1:  # TypeProto.Tensor
                for tfield, twire, tvalue in iter_fields(
                        _bytes(value, "TypeProto.tensor_type", field),
                        depth + 1):
                    if tfield == 1 and twire == VARINT:
                        self.elem_type = tvalue
                    elif tfield == 2:  # TensorShapeProto
                        self._parse_shape(
                            _bytes(tvalue, "TensorShapeProto", tfield),
                            depth + 2)

    def _parse_shape(self, data: bytes, depth: int) -> None:
        for field, _wire_type, value in iter_fields(data, depth):
            if field == 1:  # Dimension
                dim: int | str = -1
                for dfield, dwire, dvalue in iter_fields(
                        _bytes(value, "TensorShapeProto.dim", field),
                        depth + 1):
                    if dfield == 1 and dwire == VARINT:
                        dim = wire.varint_to_int64(dvalue)
                    elif dfield == 2:
                        dim = _string(dvalue, "Dimension.dim_param", dfield)
                self.dims.append(dim)

    def serialize(self) -> bytes:
        shape = MessageWriter()
        for dim in self.dims:
            dimension = MessageWriter()
            if isinstance(dim, str):
                dimension.string(2, dim)
            elif dim < 0:
                dimension.string(2, "unk")
            else:
                dimension.varint(1, dim)
            shape.message(1, dimension)
        tensor_type = MessageWriter()
        tensor_type.varint(1, self.elem_type)
        tensor_type.message(2, shape)
        type_proto = MessageWriter()
        type_proto.message(1, tensor_type)
        writer = MessageWriter()
        writer.string(1, self.name)
        writer.message(2, type_proto)
        return writer.finish()


# ---------------------------------------------------------------------------
# GraphProto / OperatorSetIdProto / ModelProto
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class GraphProto:
    name: str = ""
    node: list[NodeProto] = dataclasses.field(default_factory=list)
    initializer: list[TensorProto] = dataclasses.field(default_factory=list)
    input: list[ValueInfoProto] = dataclasses.field(default_factory=list)
    output: list[ValueInfoProto] = dataclasses.field(default_factory=list)

    @classmethod
    def parse(cls, data: bytes, depth: int = 0) -> "GraphProto":
        proto = cls()
        for field, _wire_type, value in iter_fields(data, depth):
            if field == 1:
                proto.node.append(NodeProto.parse(
                    _bytes(value, "GraphProto.node", field), depth + 1))
            elif field == 2:
                proto.name = _string(value, "GraphProto.name", field)
            elif field == 5:
                proto.initializer.append(TensorProto.parse(
                    _bytes(value, "GraphProto.initializer", field), depth + 1))
            elif field == 11:
                proto.input.append(ValueInfoProto.parse(
                    _bytes(value, "GraphProto.input", field), depth + 1))
            elif field == 12:
                proto.output.append(ValueInfoProto.parse(
                    _bytes(value, "GraphProto.output", field), depth + 1))
            # value_info (13) and others skipped
        return proto

    def serialize(self) -> bytes:
        writer = MessageWriter()
        for node in self.node:
            writer.message(1, node.serialize())
        writer.string(2, self.name)
        for tensor in self.initializer:
            writer.message(5, tensor.serialize())
        for info in self.input:
            writer.message(11, info.serialize())
        for info in self.output:
            writer.message(12, info.serialize())
        return writer.finish()


@dataclasses.dataclass
class OperatorSetIdProto:
    domain: str = ""
    version: int = 13

    @classmethod
    def parse(cls, data: bytes, depth: int = 0) -> "OperatorSetIdProto":
        proto = cls()
        for field, wire_type, value in iter_fields(data, depth):
            if field == 1:
                proto.domain = _string(value, "OperatorSetIdProto.domain", field)
            elif field == 2 and wire_type == VARINT:
                proto.version = wire.varint_to_int64(value)
        return proto

    def serialize(self) -> bytes:
        writer = MessageWriter()
        if self.domain:
            writer.string(1, self.domain)
        writer.varint(2, self.version)
        return writer.finish()


@dataclasses.dataclass
class ModelProto:
    ir_version: int = 8
    producer_name: str = "orpheus"
    producer_version: str = "1.0"
    model_version: int = 1
    graph: GraphProto | None = None
    opset_import: list[OperatorSetIdProto] = dataclasses.field(default_factory=list)

    @classmethod
    def parse(cls, data: bytes, depth: int = 0) -> "ModelProto":
        proto = cls(producer_name="", producer_version="", opset_import=[])
        for field, wire_type, value in iter_fields(data, depth):
            if field == 1 and wire_type == VARINT:
                proto.ir_version = wire.varint_to_int64(value)
            elif field == 2:
                proto.producer_name = _string(value, "ModelProto.producer_name", field)
            elif field == 3:
                proto.producer_version = _string(
                    value, "ModelProto.producer_version", field)
            elif field == 5 and wire_type == VARINT:
                proto.model_version = wire.varint_to_int64(value)
            elif field == 7:
                proto.graph = GraphProto.parse(
                    _bytes(value, "ModelProto.graph", field), depth + 1)
            elif field == 8:
                proto.opset_import.append(OperatorSetIdProto.parse(
                    _bytes(value, "ModelProto.opset", field), depth + 1))
        return proto

    def serialize(self) -> bytes:
        writer = MessageWriter()
        writer.varint(1, self.ir_version)
        if self.producer_name:
            writer.string(2, self.producer_name)
        if self.producer_version:
            writer.string(3, self.producer_version)
        writer.varint(5, self.model_version)
        if self.graph is not None:
            writer.message(7, self.graph.serialize())
        for opset in self.opset_import or [OperatorSetIdProto()]:
            writer.message(8, opset.serialize())
        return writer.finish()
