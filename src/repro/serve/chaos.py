"""Serve-chaos scenario family: kill workers mid-load and close the books.

Produces the ``BENCH_chaos.json`` document. Three scenarios, each
checking one acceptance criterion of process-isolated serving
(``worker_mode="process"``, see :mod:`repro.serve.supervisor`):

* **worker-kill** — drive open-loop load at a sub-saturation rate, then
  SIGKILL ``kill`` of the ``workers`` worker processes mid-run. The
  books must close (zero silent drops: every offered request completes,
  is rejected, or fails *structurally*), the supervisor must restart the
  dead workers, and the pool must return to full strength within
  ``recovery_window_s`` of the last kill.
* **poison-quarantine** — a ``crash:node=poison-*`` fault makes any
  worker die the moment it picks up the poison request. Resubmitting the
  same request id must be quarantined after at most
  ``quarantine_threshold`` (= 2) worker deaths — rejected with the
  structured reason ``"quarantined"`` instead of cycling the pool — and
  innocent requests must keep completing afterwards.
* **hang-heartbeat** — a ``hang:node=hang-*`` fault makes the worker
  stop heartbeating and block forever. The supervisor must detect the
  silence (heartbeat loss or request deadline), kill the worker, fail
  the in-flight request structurally, and restart the slot.

Like the serve-bench family, rates are calibrated from warm batch times
when a real model is used; the ``@loopback`` diagnostic model runs the
same scenarios in well under a second for tests and smoke jobs.
"""

from __future__ import annotations

import threading
import time
from typing import Any

import numpy as np

from repro.serve.loadgen import run_load
from repro.serve.scenarios import calibrate_saturation_rps
from repro.serve.service import InferenceService
from repro.serve.types import Completed, Failed, Rejected

DEFAULT_MODEL = "wrn-40-2"
DEFAULT_IMAGE_SIZE = 8

#: Seconds the pool gets to return to full strength after the last kill.
DEFAULT_RECOVERY_WINDOW_S = 10.0

#: Offered rate for the loopback model (calibration is meaningless at
#: microsecond service times; the point is concurrency, not throughput).
_LOOPBACK_RPS = 150.0


def _scenario_doc(name: str, service: InferenceService,
                  checks: dict[str, bool], notes: str = "",
                  **extra: Any) -> dict:
    supervisor = service.pool.supervisor
    stats = supervisor.stats()
    doc = {
        "scenario": name,
        "supervision": {
            "workers": stats.workers,
            "alive": stats.alive,
            "disabled": stats.disabled,
            "restarts": stats.restarts,
            "deaths": dict(stats.deaths),
            "quarantined": list(stats.quarantined),
        },
        "sheds": dict(service.stats().rejected),
        "checks": checks,
        "passed": all(checks.values()),
    }
    doc.update(extra)
    if notes:
        doc["notes"] = notes
    return doc


def _await_full_strength(supervisor: Any, workers: int,
                         timeout_s: float) -> float | None:
    """Seconds until every worker is alive again, or ``None`` on timeout."""
    started = time.monotonic()
    deadline = started + timeout_s
    while time.monotonic() < deadline:
        if supervisor.alive_workers() >= workers:
            return time.monotonic() - started
        time.sleep(0.02)
    return None


def run_chaos_bench(
    model: str = DEFAULT_MODEL,
    workers: int = 4,
    kill: int = 2,
    batch: int = 2,
    image_size: int | None = DEFAULT_IMAGE_SIZE,
    duration_s: float = 3.0,
    clients: int = 4,
    deadline_ms: float = 2000.0,
    rps: float | None = None,
    engine_cache: Any = None,
    seed: int = 0,
    recovery_window_s: float = DEFAULT_RECOVERY_WINDOW_S,
    progress: Any = None,
) -> dict:
    """Run the chaos scenario family and return the BENCH_chaos document."""
    if not 1 <= kill <= workers:
        raise ValueError(
            f"kill must be in [1, workers={workers}], got {kill}")

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    is_loopback = model == "@loopback"
    pool_kwargs = dict(
        workers=workers, batch=batch, seed=seed, engine_cache=engine_cache,
        backoff_base_s=0.05, backoff_cap_s=1.0)
    if not is_loopback:
        pool_kwargs["image_size"] = image_size
    else:
        # A little service time so batches are actually in flight when
        # the kills land.
        pool_kwargs["loopback_delay_s"] = 0.003
    # Crash containment is the subject here; a tripped breaker would
    # convert worker deaths into breaker-open sheds and hide the
    # restart/recovery behaviour being measured.
    service_kwargs = dict(
        worker_mode="process", queue_capacity=max(8, workers * batch * 2),
        batch_window_ms=2.0, breaker_threshold=max(20, workers * 10),
        breaker_cooldown_s=0.2, jitter_seed=seed)
    scenarios = []

    # -- scenario 1: kill K of N workers mid-load ---------------------------
    say(f"worker-kill: {model} x{workers} process workers, "
        f"killing {kill} mid-load")
    with InferenceService(model, **service_kwargs, **pool_kwargs) as service:
        supervisor = service.pool.supervisor
        if rps is not None:
            load_rps = rps
        elif is_loopback:
            load_rps = _LOOPBACK_RPS
        else:
            load_rps = max(1.0, 0.7 * calibrate_saturation_rps(service))
        say(f"offered load {load_rps:.1f} rps for {duration_s:.1f}s")

        outcome = {"killed": [], "recovery_s": None}

        def killer() -> None:
            time.sleep(max(0.2, duration_s * 0.35))
            for index in range(kill):
                pid = supervisor.kill_worker(index)
                if pid is not None:
                    outcome["killed"].append({"worker": index, "pid": pid})
                time.sleep(0.15)
            outcome["recovery_s"] = _await_full_strength(
                supervisor, workers, recovery_window_s + 5.0)

        chaos_thread = threading.Thread(target=killer, daemon=True)
        chaos_thread.start()
        report = run_load(service, rps=load_rps, duration_s=duration_s,
                          clients=clients, deadline_ms=deadline_ms,
                          seed=seed)
        chaos_thread.join(timeout=recovery_window_s + 10.0)
        stats = supervisor.stats()
        recovery_s = outcome["recovery_s"]
        scenarios.append(_scenario_doc(
            "worker-kill", service,
            checks={
                "zero_silent_drops": report.silent_drops == 0,
                "some_completions": report.completed > 0,
                "killed_requested_workers":
                    len(outcome["killed"]) == kill,
                "deaths_recorded": sum(stats.deaths.values()) >= kill,
                "restarted": stats.restarts >= kill,
                "recovered_within_window":
                    recovery_s is not None
                    and recovery_s <= recovery_window_s,
                "no_worker_disabled": stats.disabled == 0,
            },
            rps=round(load_rps, 2),
            load=report.to_dict(),
            killed=outcome["killed"],
            recovery_s=(round(recovery_s, 3)
                        if recovery_s is not None else None),
            recovery_window_s=recovery_window_s,
            notes=f"SIGKILLed {kill}/{workers} workers mid-load; books "
                  f"must close and the pool must refill within "
                  f"{recovery_window_s:g}s"))

    # -- scenario 2: poison request -> quarantine within 2 deaths ----------
    say("poison-quarantine: crash:node=poison-* fault, resubmitting the "
        "same request id")
    poison_kwargs = dict(pool_kwargs)
    poison_kwargs["fault_spec"] = "crash:node=poison-*"
    poison_kwargs["fault_seed"] = seed
    with InferenceService(
            model, **service_kwargs,
            **{**poison_kwargs, "batch": 1}) as service:
        supervisor = service.pool.supervisor
        shape = service._sample_shape or (4,)
        sample = np.zeros(shape, dtype=np.float32)
        crash_failures = 0
        quarantine_seen = False
        attempts = 0
        for attempt in range(supervisor.quarantine_threshold + 3):
            attempts += 1
            pending = service.submit(sample, deadline_ms=5000.0,
                                     request_id="poison-1")
            result = pending if isinstance(pending, Rejected) \
                else pending.result(timeout=15.0)
            if isinstance(result, Rejected) and \
                    result.reason == "quarantined":
                quarantine_seen = True
                break
            if isinstance(result, Failed):
                crash_failures += 1
            # Let the killed worker's slot restart before resubmitting so
            # the retry measures quarantine, not a restarting-state error.
            _await_full_strength(supervisor, workers, 5.0)
        innocents_ok = True
        for index in range(4):
            pending = service.submit(sample, deadline_ms=5000.0,
                                     request_id=f"innocent-{index}")
            result = pending if isinstance(pending, Rejected) \
                else pending.result(timeout=15.0)
            innocents_ok &= isinstance(result, Completed)
        stats = supervisor.stats()
        scenarios.append(_scenario_doc(
            "poison-quarantine", service,
            checks={
                "quarantined": quarantine_seen,
                "within_threshold_deaths":
                    crash_failures <= supervisor.quarantine_threshold,
                "supervisor_lists_poison":
                    "poison-1" in stats.quarantined,
                "innocents_unaffected": innocents_ok
                and not any(q.startswith("innocent")
                            for q in stats.quarantined),
            },
            attempts=attempts,
            crash_failures=crash_failures,
            quarantine_threshold=supervisor.quarantine_threshold,
            notes="a request that kills its worker "
                  f"{supervisor.quarantine_threshold}x is refused as "
                  "poison; innocent traffic keeps completing"))

    # -- scenario 3: hang -> heartbeat loss -> contained restart -----------
    say("hang-heartbeat: hang:node=hang-* fault silences one worker")
    hang_kwargs = dict(pool_kwargs)
    hang_kwargs["fault_spec"] = "hang:node=hang-*:max=1"
    hang_kwargs["fault_seed"] = seed
    hang_kwargs["heartbeat_timeout_s"] = 0.5
    hang_kwargs["request_timeout_s"] = 8.0
    with InferenceService(
            model, **service_kwargs,
            **{**hang_kwargs, "batch": 1}) as service:
        supervisor = service.pool.supervisor
        shape = service._sample_shape or (4,)
        sample = np.zeros(shape, dtype=np.float32)
        pending = service.submit(sample, request_id="hang-1")
        result = pending if isinstance(pending, Rejected) \
            else pending.result(timeout=20.0)
        hang_recovery = _await_full_strength(supervisor, workers, 10.0)
        stats = supervisor.stats()
        hang_deaths = stats.deaths.get("heartbeat-lost", 0) \
            + stats.deaths.get("request-timeout", 0)
        scenarios.append(_scenario_doc(
            "hang-heartbeat", service,
            checks={
                "structural_outcome": isinstance(result, Failed),
                "silence_detected": hang_deaths >= 1,
                "recovered": hang_recovery is not None,
            },
            outcome=type(result).__name__ if result is not None else None,
            recovery_s=(round(hang_recovery, 3)
                        if hang_recovery is not None else None),
            notes="a worker that stops heartbeating is killed, its "
                  "request fails structurally, and the slot restarts"))

    return {
        "schema": "repro/serve-chaos@1",
        "model": model,
        "workers": workers,
        "killed": kill,
        "max_batch": batch,
        "image_size": None if is_loopback else image_size,
        "duration_s": duration_s,
        "clients": clients,
        "deadline_ms": deadline_ms,
        "recovery_window_s": recovery_window_s,
        "scenarios": scenarios,
        "passed": all(s["passed"] for s in scenarios),
    }
