"""Spawn-safe process worker: one pool slot, isolated in its own process.

Launched by the :class:`~repro.serve.supervisor.WorkerSupervisor` as
``python -m repro.serve.worker`` with *no* arguments — everything the
worker needs arrives as an ``init`` frame on stdin (see
:mod:`repro.serve.protocol`), and every reply leaves on stdout. Using the
standard streams as the pipes keeps the spawn path trivial (no fd
inheritance games, works identically under any start method) and means a
worker can be driven by hand for debugging::

    PYTHONPATH=src python -m repro.serve.worker < frames.bin

The worker **rebuilds** its sessions instead of receiving pickled state:
the init spec names the model and an on-disk
:class:`~repro.engine.cache.EngineCache` directory, and the worker loads
the compiled ``.oeng`` artifact (or compiles it, under the cache's
cross-process lock, exactly once pool-wide). Weights come from the shared
artifact on disk — nothing large ever crosses the pipe, and a restarted
worker warm-starts the same way the first incarnation did.

Lifecycle on stdout:

* ``hello`` — sent once sessions are ready: pid, input name, per-sample
  shape, engine-cache hits.
* ``beat`` — heartbeats from a side thread every ``heartbeat_interval_s``,
  carrying the id of the request currently executing (if any). The
  supervisor kills a worker whose beats stop.
* ``ok`` / ``err`` — one reply per ``run`` frame, correlated by ``seq``.
* ``bye`` — acknowledges a ``shutdown`` frame; the worker then exits 0.

Process-level fault injection (``crash`` / ``hang`` / ``oom`` specs, see
:mod:`repro.runtime.faults`) is evaluated *here*, per request, against
request ids — the executor never sees those modes, so only a process that
is designed to be expendable ever dies from them.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, BinaryIO

import numpy as np

from repro.errors import OrpheusError, WorkerProtocolError
from repro.runtime.faults import FaultPlan, parse_fault_plan
from repro.serve.loopback import (
    LOOPBACK_MODEL,
    LOOPBACK_SAMPLE_SHAPE,
    LoopbackSession,
)
from repro.serve.protocol import (
    pack_arrays,
    read_frame,
    unpack_arrays,
    write_frame,
)

#: Exit codes the supervisor maps back to a structured death reason.
EXIT_CRASH = 70        # injected ``crash`` fault (stands in for a segfault)
EXIT_OOM = 137         # what the kernel OOM-killer's SIGKILL looks like
EXIT_INIT_FAILED = 3   # session build failed; details went out as an err frame

#: Bytes the ``oom`` fault mode actually allocates before dying — enough
#: to be an allocation, bounded enough to never endanger the host.
_OOM_ALLOC_BYTES = 32 << 20


def _build_sessions(spec: dict[str, Any]) -> tuple[dict[str, Any], dict]:
    """``(sessions_by_backend, hello_extras)`` for the init spec."""
    backends = tuple(spec.get("backends") or ("orpheus",))
    batch = int(spec.get("batch", 1))
    model = spec.get("model")
    if model == LOOPBACK_MODEL:
        sessions = {
            backend: LoopbackSession(
                backend=backend, batch=batch,
                delay_s=float(spec.get("loopback_delay_s", 0.0)))
            for backend in backends
        }
        return sessions, {
            "input_name": "input",
            "sample_shape": list(LOOPBACK_SAMPLE_SHAPE),
            "engine_hits": {},
        }
    # The real path reuses SessionPool's build machinery with workers=1:
    # engine-cache warm start, autotune threading, per-backend fault
    # plans, cold-prepare degrade — one code path for both worker modes.
    from repro.engine.cache import AutotuneCache
    from repro.serve.pool import SessionPool

    fault_specs = None
    if spec.get("fault_spec"):
        fault_specs = {backends[0]: spec["fault_spec"]}
    pool = SessionPool(
        model,
        backends=backends,
        workers=1,
        threads=int(spec.get("threads", 1)),
        batch=batch,
        image_size=spec.get("image_size"),
        seed=int(spec.get("seed", 0)),
        optimize=bool(spec.get("optimize", True)),
        engine_cache=spec.get("engine_cache"),
        autotune_cache=(AutotuneCache(spec["autotune_cache"])
                        if spec.get("autotune_cache") else None),
        fault_specs=fault_specs,
        fault_seed=int(spec.get("fault_seed", 0)),
        session_kwargs=spec.get("session_kwargs") or None,
    )
    sessions = {backend: pool.session(backend, 0) for backend in backends}
    sample_shape = None
    graph = getattr(sessions[backends[0]], "graph", None)
    if graph is not None and len(tuple(graph.inputs[0].shape)) > 1:
        sample_shape = list(graph.inputs[0].shape)[1:]
    return sessions, {
        "input_name": pool.input_name,
        "sample_shape": sample_shape,
        "engine_hits": dict(pool.engine_hits),
    }


class _Heartbeat(threading.Thread):
    """Emit ``beat`` frames until stopped — or silenced by a hang fault."""

    def __init__(self, out: BinaryIO, write_lock: threading.Lock,
                 interval_s: float) -> None:
        super().__init__(name="worker-heartbeat", daemon=True)
        self.out = out
        self.write_lock = write_lock
        self.interval_s = interval_s
        self.stop = threading.Event()
        self.silenced = threading.Event()
        self.busy_with: str | None = None
        self._seq = 0

    def run(self) -> None:
        while not self.stop.wait(self.interval_s):
            if self.silenced.is_set():
                continue
            self._seq += 1
            try:
                with self.write_lock:
                    write_frame(self.out, {
                        "kind": "beat", "seq": self._seq,
                        "busy": self.busy_with})
            except (OSError, ValueError):
                return  # supervisor went away; the worker is about to die


def _apply_process_fault(plan: FaultPlan | None, ids: list[str],
                         heartbeat: _Heartbeat) -> None:
    """Fire a matching crash/hang/oom fault (may never return)."""
    if plan is None:
        return
    spec = plan.draw_process(ids)
    if spec is None:
        return
    if spec.mode == "crash":
        # No goodbye frame, no flush — a segfault does not say goodbye.
        os._exit(EXIT_CRASH)
    if spec.mode == "oom":
        hog = np.ones(_OOM_ALLOC_BYTES // 8, dtype=np.float64)
        hog[0] = hog[-1]  # touch it so the allocation is real
        os._exit(EXIT_OOM)
    if spec.mode == "hang":
        # Stop heartbeating *and* stop serving: the supervisor must
        # notice the silence, not a reply.
        heartbeat.silenced.set()
        while True:
            time.sleep(3600.0)


def serve_forever(stdin: BinaryIO, stdout: BinaryIO) -> int:
    """The worker main loop; returns the process exit code."""
    write_lock = threading.Lock()
    frame = read_frame(stdin)
    if frame is None:
        return 0
    header, _ = frame
    if header.get("kind") != "init":
        raise WorkerProtocolError(
            f"expected init frame, got {header.get('kind')!r}")
    spec = header.get("spec") or {}
    heartbeat = _Heartbeat(
        stdout, write_lock,
        interval_s=float(spec.get("heartbeat_interval_s", 0.1)))
    try:
        sessions, extras = _build_sessions(spec)
    except Exception as exc:  # noqa: BLE001 - report, then die visibly
        with write_lock:
            write_frame(stdout, {
                "kind": "err", "seq": -1, "fatal": True,
                "error_type": type(exc).__name__, "message": str(exc)})
        return EXIT_INIT_FAILED
    fault_plan = None
    if spec.get("fault_spec"):
        plan = parse_fault_plan(
            spec["fault_spec"], seed=int(spec.get("fault_seed", 0)))
        if plan.has_process_specs():
            fault_plan = plan
    with write_lock:
        write_frame(stdout, {"kind": "hello", "pid": os.getpid(), **extras})
    heartbeat.start()
    while True:
        frame = read_frame(stdin)
        if frame is None:
            return 0  # supervisor closed our stdin: orderly shutdown
        header, blob = frame
        kind = header.get("kind")
        if kind == "shutdown":
            with write_lock:
                write_frame(stdout, {"kind": "bye"})
            return 0
        if kind != "run":
            raise WorkerProtocolError(f"unexpected frame kind {kind!r}")
        seq = header.get("seq")
        ids = [str(rid) for rid in header.get("ids") or []]
        _apply_process_fault(fault_plan, ids, heartbeat)
        session = sessions.get(header.get("backend"))
        if session is None:
            with write_lock:
                write_frame(stdout, {
                    "kind": "err", "seq": seq,
                    "error_type": "BackendError",
                    "message": f"worker has no session for backend "
                               f"{header.get('backend')!r}"})
            continue
        heartbeat.busy_with = ids[0] if ids else None
        try:
            feeds = unpack_arrays(header.get("arrays") or [], blob)
            started = time.perf_counter()
            outputs = session.run(feeds, deadline_ms=header.get("deadline_ms"))
            elapsed_ms = (time.perf_counter() - started) * 1e3
        except OrpheusError as exc:
            with write_lock:
                write_frame(stdout, {
                    "kind": "err", "seq": seq,
                    "error_type": type(exc).__name__, "message": str(exc)})
            continue
        finally:
            heartbeat.busy_with = None
        meta, out_blob = pack_arrays(outputs)
        with write_lock:
            write_frame(stdout, {
                "kind": "ok", "seq": seq, "arrays": meta,
                "elapsed_ms": round(elapsed_ms, 3)}, out_blob)


def main() -> int:
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # Anything that print()s during model build would corrupt the frame
    # stream; route the text-level stdout to stderr defensively.
    sys.stdout = sys.stderr
    try:
        return serve_forever(stdin, stdout)
    except WorkerProtocolError as exc:
        print(f"worker protocol error: {exc}", file=sys.stderr)
        return 1
    except (BrokenPipeError, KeyboardInterrupt):
        return 0


if __name__ == "__main__":
    sys.exit(main())
