"""`InferenceService`: the fault-contained serving loop.

Ties the pieces together: an :class:`~repro.serve.pool.SessionPool` of
warm sessions, an :class:`~repro.serve.queue.AdmissionQueue` in front, and
``workers`` dispatcher threads that coalesce single-sample requests into
dynamic batches, route each batch through the backend chain under
per-backend circuit breakers, and resolve every admitted request to
exactly one structured outcome.

The design goal is *graceful degradation*: saturation sheds load with
``retry_after`` hints instead of growing latency without bound; a backend
that keeps failing is tripped open and traffic reroutes to the next
backend in the chain while half-open probes test recovery; shutdown
drains in-flight work and rejects the rest — nothing is ever silently
dropped.

    >>> service = InferenceService("wrn-40-2", image_size=32, workers=2)
    >>> with service:
    ...     pending = service.submit(sample, deadline_ms=200)
    ...     outcome = pending.result(timeout=1.0)   # Completed | Rejected | Failed
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    OrpheusError,
    PoisonRequestError,
)
from repro.serve.breaker import BreakerSnapshot, CircuitBreaker
from repro.serve.pool import PoolRobustnessReport, SessionPool
from repro.serve.queue import AdmissionQueue
from repro.serve.types import (
    Completed,
    Failed,
    PendingResponse,
    Rejected,
    ServeRequest,
)


@dataclasses.dataclass(frozen=True)
class ServiceStats:
    """Point-in-time counters for the health endpoint and the load harness."""

    submitted: int
    accepted: int
    completed: int
    failed: int
    rejected: dict[str, int]        # shed reason -> count
    deadline_misses: int            # expired in queue + late completions
    late_completions: int
    batches: int
    batched_requests: int
    reroutes: int                   # batches served by a non-primary backend
    queue_depth: int
    ewma_batch_ms: float
    per_backend_completed: dict[str, int]
    breakers: tuple[BreakerSnapshot, ...]
    draining: bool
    stopped: bool

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected.values())

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted requests shed (0.0 when nothing arrived)."""
        if not self.submitted:
            return 0.0
        return self.total_rejected / self.submitted

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def outstanding(self) -> int:
        """Admitted requests not yet resolved (queued + in flight)."""
        return self.accepted - self.completed - self.failed - sum(
            self.rejected.get(reason, 0)
            for reason in ("expired-in-queue", "breaker-open", "stopped",
                           "quarantined"))

    def to_dict(self) -> dict:
        document = dataclasses.asdict(self)
        document["breakers"] = [dataclasses.asdict(b) for b in self.breakers]
        document["shed_rate"] = round(self.shed_rate, 6)
        document["mean_batch_size"] = round(self.mean_batch_size, 3)
        return document


@dataclasses.dataclass(frozen=True)
class ServeRobustnessReport:
    """Pool-wide robustness rollup: what degraded, and how it was contained."""

    pool: PoolRobustnessReport
    sheds: dict[str, int]
    breaker_trips: int
    breaker_recoveries: int
    reroutes: int
    deadline_misses: int
    failed_requests: int

    def summary(self) -> str:
        shed_total = sum(self.sheds.values())
        lines = [
            f"serve robustness: {shed_total} shed, "
            f"{self.breaker_trips} breaker trip(s), "
            f"{self.breaker_recoveries} recover(ies), "
            f"{self.reroutes} rerouted batch(es), "
            f"{self.deadline_misses} deadline miss(es), "
            f"{self.failed_requests} failed request(s)",
        ]
        for reason, count in sorted(self.sheds.items()):
            lines.append(f"  shed[{reason}] x{count}")
        lines.append(self.pool.summary())
        return "\n".join(lines)


class InferenceService:
    """Async inference over a warm session pool, with admission control.

    Accepts every :class:`~repro.serve.pool.SessionPool` constructor
    argument (pass ``pool=`` to supply a prebuilt pool instead), plus the
    serving knobs documented below. Workers start immediately; use the
    service as a context manager (or call :meth:`close`) to drain.

    Args:
        worker_mode: ``"thread"`` (default) serves from an in-process
            :class:`SessionPool`; ``"process"`` builds a
            :class:`~repro.serve.supervisor.WorkerSupervisor` instead and
            serves every slot from a separate OS process — crash
            containment, heartbeats, restart backoff, and poison-request
            quarantine, at the cost of per-request pipe copies. The
            dispatchers, breakers, and admission queue are identical in
            both modes.
        queue_capacity: bound on queued requests; arrivals beyond it are
            shed ``queue-full``.
        batch_window_ms: how long the dispatcher waits to coalesce a
            batch — the latency budget of dynamic batching.
        default_deadline_ms: deadline applied to requests submitted
            without one (``None`` = unbounded).
        breaker_threshold / breaker_cooldown_s: circuit-breaker tuning,
            per backend.
        retry_jitter_frac / jitter_seed: bounded, seeded jitter applied
            to ``retry_after`` hints (see :class:`AdmissionQueue`).
    """

    def __init__(
        self,
        model: Any = None,
        *,
        pool: SessionPool | None = None,
        worker_mode: str = "thread",
        queue_capacity: int = 64,
        batch_window_ms: float = 2.0,
        default_deadline_ms: float | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 1.0,
        retry_jitter_frac: float = 0.25,
        jitter_seed: int = 0,
        **pool_kwargs: Any,
    ) -> None:
        if (model is None) == (pool is None):
            raise ValueError("pass exactly one of `model` or `pool=`")
        if worker_mode not in ("thread", "process"):
            raise ValueError(
                f"worker_mode must be 'thread' or 'process', got "
                f"{worker_mode!r}")
        self._owns_pool = pool is None
        if pool is not None:
            self.pool = pool
        elif worker_mode == "process":
            from repro.serve.supervisor import (
                ProcessWorkerPool,
                WorkerSupervisor,
            )

            self.pool = ProcessWorkerPool(
                WorkerSupervisor(model, **pool_kwargs))
        else:
            self.pool = SessionPool(model, **pool_kwargs)
        self.worker_mode = worker_mode if pool is None else (
            "process" if hasattr(self.pool, "supervisor") else "thread")
        self.batch_window_ms = batch_window_ms
        self.default_deadline_ms = default_deadline_ms
        self.queue = AdmissionQueue(
            capacity=queue_capacity, workers=self.pool.workers,
            batch=self.pool.batch, retry_jitter_frac=retry_jitter_frac,
            jitter_seed=jitter_seed)
        self.breakers = {
            name: CircuitBreaker(name, failure_threshold=breaker_threshold,
                                 cooldown_s=breaker_cooldown_s)
            for name in self.pool.backends
        }
        self._sample_shape = self._infer_sample_shape()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._counter = 0            # guarded-by: _lock
        self._submitted = 0          # guarded-by: _lock
        self._accepted = 0           # guarded-by: _lock
        self._completed = 0          # guarded-by: _lock
        self._failed = 0             # guarded-by: _lock
        self._late = 0               # guarded-by: _lock
        self._expired = 0            # guarded-by: _lock
        self._batches = 0            # guarded-by: _lock
        self._batched_requests = 0   # guarded-by: _lock
        self._reroutes = 0           # guarded-by: _lock
        self._inflight = 0           # guarded-by: _lock
        self._per_backend: dict[str, int] = {  # guarded-by: _lock
            name: 0 for name in self.pool.backends}
        self._draining = False       # guarded-by: _lock
        self._stopped = False        # guarded-by: _lock
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(index,),
                name=f"serve-worker-{index}", daemon=True)
            for index in range(self.pool.workers)
        ]
        for thread in self._threads:
            thread.start()

    def _infer_sample_shape(self) -> tuple[int, ...] | None:
        shape = getattr(self.pool, "sample_shape", None)
        if shape is not None:
            return tuple(shape)  # process pool: reported in the hello
        session = self.pool.session(self.pool.backends[0], 0)
        graph = getattr(session, "graph", None)
        if graph is None:
            return None
        shape = tuple(graph.inputs[0].shape)
        return shape[1:] if len(shape) > 1 else None

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        sample: np.ndarray,
        deadline_ms: float | None = None,
        request_id: str | None = None,
    ) -> "PendingResponse | Rejected":
        """Admit one single-sample request, or shed it structurally.

        Returns a :class:`PendingResponse` on admission (resolve with
        ``.result(timeout)``) or an immediate :class:`Rejected` when
        admission control sheds the request. Malformed input (wrong sample
        shape) raises ``ValueError`` — that is a caller bug, not load.
        """
        sample = np.asarray(sample)
        if self._sample_shape is not None and tuple(sample.shape) != \
                self._sample_shape:
            raise ValueError(
                f"sample shape {tuple(sample.shape)} does not match the "
                f"model's per-sample input shape {self._sample_shape}")
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        with self._lock:
            self._submitted += 1
            self._counter += 1
            rid = request_id or f"r{self._counter}"
            draining = self._draining
        pending = PendingResponse(ServeRequest(
            id=rid, sample=sample, deadline_ms=deadline_ms,
            submitted_at=time.monotonic()))
        rejection = self.queue.try_admit(pending, draining=draining)
        if rejection is not None:
            pending.resolve(rejection)
            return rejection
        with self._lock:
            self._accepted += 1
        return pending

    # -- dispatcher ------------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        while not self._stop.is_set():
            batch = self.queue.take_batch(
                self.pool.batch, self.batch_window_ms)
            if not batch:
                continue
            with self._lock:
                self._inflight += len(batch)
            try:
                self._dispatch(index, batch)
            finally:
                with self._idle:
                    self._inflight -= len(batch)
                    self._idle.notify_all()

    def _dispatch(self, worker: int, batch: list[PendingResponse]) -> None:
        now = time.monotonic()
        live: list[PendingResponse] = []
        for pending in batch:
            remaining = pending.request.remaining_ms(now)
            if remaining is not None and remaining <= 0:
                pending.resolve(self.queue.shed(
                    pending.request.id, "expired-in-queue", None,
                    f"deadline passed {-remaining:.1f} ms before dispatch"))
                with self._lock:
                    self._expired += 1
                continue
            live.append(pending)
        # A batch may carry a poison request (process mode): shed the
        # quarantined members up front, and when quarantine is discovered
        # mid-dispatch (PoisonRequestError), shed those and re-dispatch
        # the innocent remainder. Each pass removes at least one request,
        # so this terminates.
        while live:
            live = self._shed_quarantined(live)
            if not live:
                return
            live = self._dispatch_once(worker, live)

    def _shed_quarantined(
        self, live: list[PendingResponse],
        poisoned: "set[str] | None" = None,
    ) -> list[PendingResponse]:
        """Resolve quarantined members of ``live``; return the innocents."""
        if poisoned is None:
            quarantined = getattr(self.pool, "quarantined", None)
            if quarantined is None:
                return live
            poisoned = quarantined([p.request.id for p in live])
        if not poisoned:
            return live
        keep: list[PendingResponse] = []
        for pending in live:
            if pending.request.id in poisoned:
                pending.resolve(self.queue.shed(
                    pending.request.id, "quarantined", None,
                    "poison request: repeatedly killed its worker"))
            else:
                keep.append(pending)
        return keep

    def _dispatch_once(
        self, worker: int, live: list[PendingResponse],
    ) -> list[PendingResponse]:
        """Walk the backend chain once for ``live``.

        Returns the (possibly empty) list of requests that still need a
        dispatch — non-empty only when a poison request was quarantined
        mid-run and innocents from its batch deserve a fresh attempt.
        """
        feeds, count = self._assemble(live)
        run_deadline = self._run_deadline_ms(live)
        request_ids = tuple(p.request.id for p in live)
        failure: Failed | None = None
        for position, backend in enumerate(self.pool.backends):
            breaker = self.breakers[backend]
            if not breaker.allow():
                continue
            session = self.pool.session(backend, worker)
            started = time.perf_counter()
            try:
                if getattr(session, "accepts_request_ids", False):
                    outputs = session.run(
                        feeds, deadline_ms=run_deadline,
                        request_ids=request_ids)
                else:
                    outputs = session.run(feeds, deadline_ms=run_deadline)
            except PoisonRequestError as exc:
                # Not a backend failure: the batch contains a known-bad
                # request. No breaker penalty; retry the innocents.
                return self._shed_quarantined(live, set(exc.request_ids))
            except DeadlineExceededError as exc:
                breaker.record_failure()
                failure = Failed(id="", error_type=type(exc).__name__,
                                 message=str(exc), backend=backend)
                continue
            except OrpheusError as exc:
                breaker.record_failure()
                failure = Failed(id="", error_type=type(exc).__name__,
                                 message=str(exc), backend=backend)
                continue
            elapsed = time.perf_counter() - started
            breaker.record_success()
            self.queue.observe_batch(elapsed)
            self._resolve_completed(live, outputs, backend, count)
            with self._lock:
                self._batches += 1
                self._batched_requests += count
                self._per_backend[backend] += count
                if position > 0:
                    self._reroutes += 1
            return []
        # No backend served the batch: every breaker was open, or every
        # allowed backend failed. Either way the outcome is structured.
        if failure is None:
            retry = min(
                (b.retry_after_s() for b in self.breakers.values()
                 if b.retry_after_s() is not None),
                default=None)
            for pending in live:
                pending.resolve(self.queue.shed(
                    pending.request.id, "breaker-open", retry,
                    "all backends tripped open"))
        else:
            for pending in live:
                pending.resolve(dataclasses.replace(
                    failure, id=pending.request.id))
            with self._lock:
                self._failed += len(live)
        return []

    def _assemble(self, live: list[PendingResponse]) -> tuple[dict, int]:
        samples = np.stack([p.request.sample for p in live])
        count = len(live)
        if count < self.pool.batch:
            pad = np.zeros(
                (self.pool.batch - count, *samples.shape[1:]),
                dtype=samples.dtype)
            samples = np.concatenate([samples, pad])
        return {self.pool.input_name: samples}, count

    @staticmethod
    def _run_deadline_ms(live: list[PendingResponse]) -> float | None:
        """Wall-clock budget for the batch execution itself.

        The *loosest* member deadline bounds the run: a single stale
        request must not kill a batch whose other members can still make
        their deadlines. Unbounded requests leave the run unbounded.
        """
        now = time.monotonic()
        worst = 0.0
        for pending in live:
            remaining = pending.request.remaining_ms(now)
            if remaining is None:
                return None
            worst = max(worst, remaining)
        return worst if worst > 0 else None

    def _resolve_completed(self, live: list[PendingResponse], outputs: dict,
                           backend: str, count: int) -> None:
        primary = next(iter(outputs.values()))
        now = time.monotonic()
        late = 0
        for index, pending in enumerate(live):
            request = pending.request
            remaining = request.remaining_ms(now)
            is_late = remaining is not None and remaining < 0
            late += int(is_late)
            pending.resolve(Completed(
                id=request.id,
                output=np.array(primary[index]),
                latency_ms=(now - request.submitted_at) * 1e3,
                backend=backend,
                batch_size=count,
                late=is_late))
        with self._lock:
            self._completed += len(live)
            self._late += late

    # -- lifecycle -------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, wait for queued + in-flight work to finish.

        Returns ``True`` when the service went idle within ``timeout``.
        New submissions are shed ``draining`` from the moment this is
        called; already-admitted requests run to completion.
        """
        with self._lock:
            self._draining = True
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        while True:
            with self._idle:
                if len(self.queue) == 0 and self._inflight == 0:
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining if remaining is not None else 0.1)

    def close(self, drain: bool = True, timeout: float | None = 10.0) -> None:
        """Shut down: optionally drain, then stop workers.

        Whatever is still queued when the workers stop is resolved
        ``stopped`` — a killed service still leaves no request unanswered.
        """
        with self._lock:
            if self._stopped:
                return
        if drain:
            self.drain(timeout=timeout)
        self._stop.set()
        for pending in self.queue.close():
            pending.resolve(self.queue.shed(
                pending.request.id, "stopped", None,
                "service shut down before dispatch"))
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._owns_pool:
            close_pool = getattr(self.pool, "close", None)
            if close_pool is not None:
                close_pool()  # process mode: shut the supervisor down
        with self._lock:
            self._stopped = True
            self._draining = True

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(drain=exc_info[0] is None)

    # -- health ----------------------------------------------------------------

    def stats(self) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                submitted=self._submitted,
                accepted=self._accepted,
                completed=self._completed,
                failed=self._failed,
                rejected=dict(self.queue.sheds),
                deadline_misses=self._expired + self._late,
                late_completions=self._late,
                batches=self._batches,
                batched_requests=self._batched_requests,
                reroutes=self._reroutes,
                queue_depth=len(self.queue),
                ewma_batch_ms=self.queue.ewma_batch_s * 1e3,
                per_backend_completed=dict(self._per_backend),
                breakers=tuple(
                    b.snapshot() for b in self.breakers.values()),
                draining=self._draining,
                stopped=self._stopped,
            )

    def robustness_report(self) -> ServeRobustnessReport:
        """Sheds, trips, fallbacks, and deadline misses — pool-wide."""
        stats = self.stats()
        return ServeRobustnessReport(
            pool=self.pool.robustness_report(),
            sheds=stats.rejected,
            breaker_trips=sum(b.trips for b in stats.breakers),
            breaker_recoveries=sum(b.recoveries for b in stats.breakers),
            reroutes=stats.reroutes,
            deadline_misses=stats.deadline_misses,
            failed_requests=stats.failed,
        )

    def health(self) -> dict:
        """JSON-ready health document for the CLI and the smoke job."""
        stats = self.stats()
        supervisor = getattr(self.pool, "supervisor", None)
        supervisor_stats = supervisor.stats() if supervisor is not None \
            else None
        status = "ok"
        if stats.stopped:
            status = "stopped"
        elif stats.draining:
            status = "draining"
        elif any(b.state != "closed" for b in stats.breakers):
            status = "degraded"
        elif supervisor_stats is not None and \
                supervisor_stats.alive < supervisor_stats.workers:
            status = "degraded"
        document = {
            "status": status,
            "model": self.pool.model_name,
            "backends": list(self.pool.backends),
            "workers": self.pool.workers,
            "worker_mode": self.worker_mode,
            "max_batch": self.pool.batch,
            "stats": stats.to_dict(),
        }
        if supervisor_stats is not None:
            document["supervisor"] = supervisor_stats.to_dict()
        return document
