"""Serve-bench scenario family: saturation, overload, and breaker recovery.

Produces the ``BENCH_serve.json`` document committed alongside the Figure 2
results. Three scenarios, each checking one acceptance criterion of the
serving layer:

* **baseline** — 0.5x the calibrated saturation rate. Everything should be
  accepted and completed; the p99 here is the "unsaturated p99" that the
  overload run is judged against.
* **overload** — 2x saturation. The service must shed the excess with
  structured ``Rejected`` rows (zero silent drops) while the latency of
  the requests it *does* accept stays bounded: accepted-request p99 within
  ``P99_BOUND_FACTOR`` of the baseline p99.
* **breaker** — the primary backend is injected with a bounded run of
  faults (``raise:op=...:max=N``). The breaker must trip, traffic must
  reroute to the fallback backend, and once the fault budget is exhausted
  a half-open probe must recover the primary.

Saturation is *calibrated*, not configured: a short warm run measures the
pool's EWMA batch time and derives requests/second from it, so the same
scenario file is meaningful on fast and slow hosts.
"""

from __future__ import annotations

import time
from typing import Any

from repro.serve.loadgen import LoadReport, run_load
from repro.serve.pool import SessionPool
from repro.serve.service import InferenceService

# Accepted-request p99 under 2x overload must stay within this factor of
# the unsaturated p99 — the "bounded latency under overload" criterion.
P99_BOUND_FACTOR = 3.0

DEFAULT_MODEL = "wrn-40-2"
DEFAULT_IMAGE_SIZE = 8


def calibrate_saturation_rps(
    service: InferenceService, warm_requests: int = 8,
) -> float:
    """Measure the pool's sustainable request rate from warm batch times.

    Runs a few sequential requests to settle the service-time EWMA, then
    returns ``workers * batch / ewma_batch_s`` — the rate at which every
    dispatcher is busy all the time.
    """
    import numpy as np

    shape = service._sample_shape or (4,)
    sample = np.zeros(shape, dtype=np.float32)
    for _ in range(warm_requests):
        pending = service.submit(sample)
        if hasattr(pending, "result"):
            pending.result(timeout=30.0)
    ewma = service.queue.ewma_batch_s
    pool = service.pool
    return max(0.5, (pool.workers * pool.batch) / max(ewma, 1e-4))


def _scenario_doc(name: str, rps: float, report: LoadReport,
                  service: InferenceService, checks: dict[str, bool],
                  notes: str = "") -> dict:
    doc = {
        "scenario": name,
        "rps": round(rps, 2),
        "load": report.to_dict(),
        "robustness": {
            "sheds": dict(service.stats().rejected),
            "breaker_trips": service.robustness_report().breaker_trips,
            "breaker_recoveries":
                service.robustness_report().breaker_recoveries,
            "reroutes": service.robustness_report().reroutes,
            "deadline_misses": service.robustness_report().deadline_misses,
        },
        "checks": checks,
        "passed": all(checks.values()),
    }
    if notes:
        doc["notes"] = notes
    return doc


def run_serve_bench(
    model: str = DEFAULT_MODEL,
    # Not "reference" as the fallback: its naive kernels are orders of
    # magnitude slower, and a rerouted scenario would crawl.
    backends: tuple[str, ...] = ("orpheus", "direct"),
    workers: int = 2,
    batch: int = 4,
    image_size: int | None = DEFAULT_IMAGE_SIZE,
    duration_s: float = 4.0,
    clients: int = 4,
    deadline_ms: float = 2000.0,
    rps: float | None = None,
    engine_cache: Any = None,
    autotune_cache: Any = None,
    seed: int = 0,
    progress: Any = None,
) -> dict:
    """Run the full scenario family and return the BENCH_serve document.

    ``rps`` overrides the calibrated saturation rate (the CLI's
    ``--rps``); baseline and overload still scale 0.5x / 2x from it.
    """
    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    say(f"building pool: {model} x{workers} workers, "
        f"backends={'/'.join(backends)}")
    pool_kwargs = dict(
        backends=backends, workers=workers, batch=batch,
        image_size=image_size, seed=seed, engine_cache=engine_cache,
        autotune_cache=autotune_cache)
    scenarios = []

    # -- calibration + baseline + overload on one clean service ------------
    # Queue depth IS the latency bound a service promises its accepted
    # requests: every queued batch-round adds one batch service time to
    # the wait. One round keeps the overload p99 comfortably inside the
    # 3x bound; a deep queue would instead convert overload into
    # hundreds of ms of queueing for everyone it admits.
    queue_capacity = max(4, workers * batch)
    with InferenceService(model, queue_capacity=queue_capacity,
                          batch_window_ms=2.0, **pool_kwargs) as service:
        saturation = rps if rps is not None \
            else calibrate_saturation_rps(service)
        say(f"saturation ~{saturation:.1f} rps "
            f"(ewma batch {service.queue.ewma_batch_s * 1e3:.1f} ms)")

        base_rps = max(0.5, 0.5 * saturation)
        say(f"baseline: {base_rps:.1f} rps for {duration_s:.0f}s")
        baseline = run_load(service, rps=base_rps, duration_s=duration_s,
                            clients=clients, deadline_ms=deadline_ms,
                            seed=seed)
        base_p99 = baseline.latency_ms(99)
        scenarios.append(_scenario_doc(
            "baseline", base_rps, baseline, service,
            checks={
                "zero_silent_drops": baseline.silent_drops == 0,
                "some_completions": baseline.completed > 0,
            },
            notes="0.5x saturation; p99 here is the unsaturated reference"))

        over_rps = 2.0 * saturation
        say(f"overload: {over_rps:.1f} rps for {duration_s:.0f}s")
        overload = run_load(service, rps=over_rps, duration_s=duration_s,
                            clients=clients, deadline_ms=deadline_ms,
                            seed=seed + 1)
        over_p99 = overload.latency_ms(99)
        p99_bounded = (overload.completed == 0
                       or over_p99 <= P99_BOUND_FACTOR * max(base_p99, 1e-3))
        scenarios.append(_scenario_doc(
            "overload", over_rps, overload, service,
            checks={
                "zero_silent_drops": overload.silent_drops == 0,
                "some_completions": overload.completed > 0,
                "overload_shed_structurally": overload.total_rejected > 0,
                "p99_bounded": p99_bounded,
            },
            notes=f"2x saturation; accepted-request p99 {over_p99:.1f} ms "
                  f"vs baseline {base_p99:.1f} ms "
                  f"(bound {P99_BOUND_FACTOR:g}x)"))

    # -- breaker trip / reroute / recovery on a faulted service ------------
    say("breaker scenario: primary backend injected with bounded faults")
    # kernel_fallback off so every injected raise exhausts the (length-1)
    # chain and fails the whole run: one fault trigger per failed batch,
    # which makes the trip -> reroute -> recover sequence deterministic.
    fault_pool = SessionPool(
        model,
        fault_specs={backends[0]: "raise:op=Conv:max=3"},
        fault_seed=seed,
        session_kwargs={"kernel_fallback": False},
        **pool_kwargs)
    with InferenceService(pool=fault_pool, queue_capacity=queue_capacity,
                          batch_window_ms=2.0, breaker_threshold=2,
                          breaker_cooldown_s=0.2) as service:
        breaker_rps = 4.0 if rps is None else max(1.0, rps)
        breaker_load = run_load(
            service, rps=breaker_rps, duration_s=max(duration_s, 3.0),
            clients=2, deadline_ms=None, seed=seed + 2)
        # Give the half-open probe a chance if the load ended right as the
        # cooldown elapsed.
        if service.robustness_report().breaker_recoveries == 0:
            time.sleep(0.3)
            extra = run_load(service, rps=breaker_rps, duration_s=1.0,
                             clients=1, deadline_ms=None, seed=seed + 3)
            breaker_load = _merge_reports(breaker_load, extra)
        report = service.robustness_report()
        scenarios.append(_scenario_doc(
            "breaker", breaker_rps, breaker_load, service,
            checks={
                "zero_silent_drops": breaker_load.silent_drops == 0,
                "breaker_tripped": report.breaker_trips >= 1,
                "rerouted": report.reroutes >= 1
                or breaker_load.per_backend.get(backends[1], 0) > 0,
                "recovered": report.breaker_recoveries >= 1,
            },
            notes="primary faulted (raise:op=Conv:max=3): trip, reroute "
                  "to fallback, half-open probe recovers once the fault "
                  "budget is exhausted"))

    return {
        "schema": "repro/serve-bench@1",
        "model": model,
        "backends": list(backends),
        "workers": workers,
        "max_batch": batch,
        "image_size": image_size,
        "clients": clients,
        "duration_s": duration_s,
        "deadline_ms": deadline_ms,
        "saturation_rps": round(saturation, 2),
        "p99_bound_factor": P99_BOUND_FACTOR,
        "scenarios": scenarios,
        "passed": all(s["passed"] for s in scenarios),
    }


def _merge_reports(first: LoadReport, second: LoadReport) -> LoadReport:
    rejected = dict(first.rejected)
    for reason, count in second.rejected.items():
        rejected[reason] = rejected.get(reason, 0) + count
    per_backend = dict(first.per_backend)
    for backend, count in second.per_backend.items():
        per_backend[backend] = per_backend.get(backend, 0) + count
    return LoadReport(
        offered=first.offered + second.offered,
        completed=first.completed + second.completed,
        rejected=rejected,
        failed=first.failed + second.failed,
        timed_out=first.timed_out + second.timed_out,
        duration_s=first.duration_s + second.duration_s,
        target_rps=first.target_rps,
        latencies_ms=first.latencies_ms + second.latencies_ms,
        late_completions=first.late_completions + second.late_completions,
        per_backend=per_backend,
    )
