"""Process-isolated worker supervision: crash containment for the pool.

The threaded :class:`~repro.serve.pool.SessionPool` shares one address
space — a segfaulting kernel, a runaway allocation, or a hung native call
takes every worker (and the admission queue, and the caller) down with
it. :class:`WorkerSupervisor` runs each pool slot as a separate OS
process instead (:mod:`repro.serve.worker`), so the blast radius of any
single failure is one worker, one in-flight batch, and nothing else.

Containment contract, in order of the machinery below:

* **Isolation** — workers are spawned as fresh interpreters that rebuild
  their sessions from the on-disk engine cache; weights load from the
  shared artifact, nothing is pickled across the pipe.
* **Detection** — each worker heartbeats on a side thread; the monitor
  declares a worker dead when its process exits, its beats stop, or an
  in-flight request overstays its deadline (plus grace).
* **Structural failure** — the in-flight request of a dead worker is
  resolved with :class:`~repro.errors.WorkerCrashError`; the dispatcher
  turns that into a breaker failure and a reroute or a ``Failed``
  outcome. Nothing is silently dropped, ever.
* **Recovery** — dead workers restart with exponential backoff, under a
  restart-storm budget (at most ``restart_budget`` restarts per rolling
  ``restart_window_s``); a slot that blows the budget is *disabled* and
  reported, instead of burning CPU in a crash loop.
* **Quarantine** — a request id observed in the in-flight batch of
  ``quarantine_threshold`` worker deaths is a *poison request*: further
  dispatches are refused with :class:`~repro.errors.PoisonRequestError`
  (the service sheds it ``quarantined``) instead of sacrificing a third
  worker to it.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import subprocess
import sys
import threading
import time
from typing import Any

import numpy as np

from repro.errors import PoisonRequestError, WorkerCrashError
from repro.serve import worker as worker_mod
from repro.serve.protocol import pack_arrays, read_frame, unpack_arrays, \
    write_frame

_STARTING = "starting"
_READY = "ready"
_RESTARTING = "restarting"
_DISABLED = "disabled"
_CLOSED = "closed"


class _Slot:
    """One in-flight request on one worker incarnation."""

    __slots__ = ("seq", "ids", "event", "outputs", "error")

    def __init__(self, seq: int, ids: tuple[str, ...]) -> None:
        self.seq = seq
        self.ids = ids
        self.event = threading.Event()
        self.outputs: dict[str, np.ndarray] | None = None
        self.error: Exception | None = None

    def resolve(self, outputs: dict | None, error: Exception | None) -> None:
        if self.event.is_set():
            return
        self.outputs = outputs
        self.error = error
        self.event.set()


class _Handle:
    """Mutable supervisor-side state for one worker slot."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = _STARTING
        self.generation = 0
        self.proc: subprocess.Popen | None = None
        self.reader: threading.Thread | None = None
        self.last_beat = 0.0
        self.started_at = 0.0
        self.hello: dict | None = None
        self.init_error: str | None = None
        self.inflight: _Slot | None = None
        self.request_lock = threading.Lock()   # serializes run() callers
        self.stdin_lock = threading.Lock()     # serializes frame writes
        self.seq = 0
        self.consecutive_deaths = 0
        self.restart_at = 0.0
        self.restart_times: list[float] = []
        self.restarts = 0


@dataclasses.dataclass(frozen=True)
class WorkerSnapshot:
    """Point-in-time view of one worker slot."""

    index: int
    state: str
    pid: int | None
    restarts: int
    consecutive_deaths: int
    inflight_ids: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class SupervisorStats:
    """Supervision counters for health surfaces and the chaos harness."""

    workers: int
    alive: int
    disabled: int
    restarts: int
    deaths: dict[str, int]            # reason -> count
    quarantined: tuple[str, ...]      # poisoned request ids
    slots: tuple[WorkerSnapshot, ...]

    def to_dict(self) -> dict:
        document = dataclasses.asdict(self)
        document["slots"] = [dataclasses.asdict(s) for s in self.slots]
        return document


class WorkerSupervisor:
    """Spawn, monitor, restart, and quarantine a pool of process workers.

    Args:
        model: zoo model name (or ``"@loopback"`` for the diagnostic
            session) — workers rebuild it themselves; graphs are never
            pickled.
        backends / workers / batch / threads / image_size / seed /
            optimize / engine_cache / autotune_cache / fault_spec /
            fault_seed / session_kwargs: forwarded to every worker's init
            spec (see :mod:`repro.serve.worker`). ``engine_cache`` should
            be a directory path so all workers share the artifact.
        heartbeat_interval_s: how often workers beat.
        heartbeat_timeout_s: silence after which a worker is declared
            hung and killed.
        request_timeout_s: wait bound for requests without deadlines.
        deadline_grace_s: slack added to a request's own deadline before
            the worker is declared stuck on it.
        backoff_base_s / backoff_cap_s: exponential restart backoff
            (``base * 2**(deaths-1)``, capped).
        restart_budget / restart_window_s: restart-storm budget — more
            than ``restart_budget`` restarts inside a rolling window
            disables the slot instead of restarting it again.
        quarantine_threshold: worker deaths a request id may appear
            in-flight for before it is quarantined as poison.
        spawn_timeout_s: bound on initial spawn + session rebuild.
    """

    def __init__(
        self,
        model: Any,
        *,
        backends: tuple[str, ...] = ("orpheus",),
        workers: int = 2,
        batch: int = 1,
        threads: int = 1,
        image_size: int | None = None,
        seed: int = 0,
        optimize: bool = True,
        engine_cache: Any = None,
        autotune_cache: Any = None,
        fault_spec: str | None = None,
        fault_seed: int = 0,
        session_kwargs: dict | None = None,
        loopback_delay_s: float = 0.0,
        heartbeat_interval_s: float = 0.05,
        heartbeat_timeout_s: float = 1.0,
        request_timeout_s: float = 60.0,
        deadline_grace_s: float = 1.0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        restart_budget: int = 8,
        restart_window_s: float = 30.0,
        quarantine_threshold: int = 2,
        spawn_timeout_s: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not isinstance(model, str):
            raise ValueError(
                "process workers rebuild their model from its name; pass a "
                "zoo model name (or '@loopback'), not a graph object")
        if quarantine_threshold < 1:
            raise ValueError(
                f"quarantine_threshold must be >= 1, got {quarantine_threshold}")
        self.model_name = model
        self.backends = tuple(backends)
        self.workers = workers
        self.batch = batch
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.request_timeout_s = request_timeout_s
        self.deadline_grace_s = deadline_grace_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.restart_budget = restart_budget
        self.restart_window_s = restart_window_s
        self.quarantine_threshold = quarantine_threshold
        self.spawn_timeout_s = spawn_timeout_s
        if engine_cache is not None and not isinstance(engine_cache, str):
            engine_cache = getattr(engine_cache, "directory", None)
        if autotune_cache is not None and not isinstance(autotune_cache, str):
            autotune_cache = getattr(autotune_cache, "path", None)
        self._spec = {
            "model": model,
            "backends": list(self.backends),
            "batch": batch,
            "threads": threads,
            "image_size": image_size,
            "seed": seed,
            "optimize": optimize,
            "engine_cache": engine_cache,
            "autotune_cache": autotune_cache,
            "fault_spec": fault_spec,
            "session_kwargs": dict(session_kwargs or {}),
            "loopback_delay_s": loopback_delay_s,
            "heartbeat_interval_s": heartbeat_interval_s,
        }
        self._fault_seed = fault_seed
        self._lock = threading.Lock()
        self._closed = False                           # guarded-by: _lock
        self._death_counts: dict[str, int] = {}        # guarded-by: _lock
        self._quarantined: set[str] = set()            # guarded-by: _lock
        self._deaths_by_reason: dict[str, int] = {}    # guarded-by: _lock
        self._restarts_total = 0                       # guarded-by: _lock
        self.input_name = "input"
        self.sample_shape: tuple[int, ...] | None = None
        self.engine_hits: dict[str, bool] = {}
        self._monitor: threading.Thread | None = None
        self._handles = [_Handle(index) for index in range(workers)]
        for handle in self._handles:
            self._spawn(handle)
        self._await_initial_hellos()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="worker-supervisor", daemon=True)
        self._monitor.start()

    # -- spawning --------------------------------------------------------------

    def _spawn(self, handle: _Handle) -> None:
        """Start a fresh incarnation for ``handle`` (caller sets no locks)."""
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        if src_root not in (existing or "").split(os.pathsep):
            env["PYTHONPATH"] = (f"{src_root}{os.pathsep}{existing}"
                                 if existing else src_root)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=env)
        with self._lock:
            handle.generation += 1
            generation = handle.generation
            handle.proc = proc
            handle.state = _STARTING
            handle.hello = None
            handle.init_error = None
            handle.seq = 0
            handle.started_at = time.monotonic()
            handle.last_beat = handle.started_at
        spec = dict(self._spec)
        # Distinct per-incarnation seeds keep probabilistic fault draws
        # decorrelated across workers and across restarts, while staying
        # deterministic for a fixed (fault_seed, slot, generation).
        spec["fault_seed"] = (self._fault_seed + handle.index
                              + 1000 * (generation - 1))
        try:
            with handle.stdin_lock:
                write_frame(proc.stdin, {"kind": "init", "spec": spec})
        except (OSError, ValueError):
            pass  # already dead; the monitor will pick the corpse up
        reader = threading.Thread(
            target=self._reader_loop, args=(handle, generation, proc),
            name=f"worker-{handle.index}-reader", daemon=True)
        handle.reader = reader
        reader.start()

    def _await_initial_hellos(self) -> None:
        deadline = time.monotonic() + self.spawn_timeout_s
        for handle in self._handles:
            while True:
                with self._lock:
                    if handle.state == _READY:
                        break
                    failure = handle.init_error
                    proc = handle.proc
                if failure is not None or (proc is not None
                                           and proc.poll() is not None):
                    self.close()
                    raise WorkerCrashError(
                        f"worker {handle.index} failed during startup: "
                        f"{failure or 'process exited'}",
                        worker=handle.index, reason="init-failed",
                        exit_code=proc.poll() if proc else None)
                if time.monotonic() > deadline:
                    self.close()
                    raise WorkerCrashError(
                        f"worker {handle.index} did not come up within "
                        f"{self.spawn_timeout_s:.0f}s",
                        worker=handle.index, reason="spawn-timeout")
                time.sleep(0.005)

    # -- reader / monitor threads ----------------------------------------------

    def _reader_loop(self, handle: _Handle, generation: int,
                     proc: subprocess.Popen) -> None:
        try:
            while True:
                frame = read_frame(proc.stdout)
                if frame is None:
                    return  # EOF; the monitor reaps the exit status
                header, blob = frame
                kind = header.get("kind")
                if kind == "beat":
                    with self._lock:
                        if handle.generation == generation:
                            handle.last_beat = time.monotonic()
                elif kind == "hello":
                    with self._lock:
                        if handle.generation != generation:
                            continue
                        handle.hello = header
                        handle.state = _READY
                        handle.last_beat = time.monotonic()
                        self.input_name = header.get(
                            "input_name") or self.input_name
                        shape = header.get("sample_shape")
                        if shape:
                            self.sample_shape = tuple(shape)
                        for backend, hit in (header.get(
                                "engine_hits") or {}).items():
                            self.engine_hits.setdefault(backend, hit)
                elif kind in ("ok", "err"):
                    with self._lock:
                        slot = handle.inflight
                        if (handle.generation != generation or slot is None
                                or slot.seq != header.get("seq")):
                            if header.get("fatal"):
                                handle.init_error = header.get("message")
                            continue
                        handle.inflight = None
                        handle.consecutive_deaths = 0  # real progress
                    if kind == "ok":
                        outputs = unpack_arrays(
                            header.get("arrays") or [], blob)
                        slot.resolve(outputs, None)
                    else:
                        slot.resolve(None, _remote_error(header))
                # "bye" and unknown kinds fall through silently
        except Exception:  # noqa: BLE001 - protocol corruption == death
            proc.kill()
            self._reap(handle, generation, reason="protocol-error")

    def _monitor_loop(self) -> None:
        poll_s = max(0.01, self.heartbeat_interval_s / 2)
        while True:
            with self._lock:
                if self._closed:
                    return
                handles = list(self._handles)
            now = time.monotonic()
            for handle in handles:
                with self._lock:
                    state = handle.state
                    proc = handle.proc
                    generation = handle.generation
                    last_beat = handle.last_beat
                    restart_at = handle.restart_at
                if state in (_DISABLED, _CLOSED):
                    continue
                if state == _RESTARTING:
                    if now >= restart_at:
                        self._spawn(handle)
                    continue
                if proc is not None and proc.poll() is not None:
                    self._reap(handle, generation, reason=None)
                    continue
                if state == _STARTING:
                    if now - last_beat > self.spawn_timeout_s:
                        proc.kill()
                        self._reap(handle, generation, reason="spawn-timeout")
                    continue
                if now - last_beat > self.heartbeat_timeout_s:
                    proc.kill()
                    self._reap(handle, generation, reason="heartbeat-lost")
            time.sleep(poll_s)

    # -- death handling --------------------------------------------------------

    def _reap(self, handle: _Handle, generation: int,
              reason: str | None) -> None:
        """Declare one incarnation dead: fail in-flight, plan recovery."""
        with self._lock:
            if self._closed or handle.generation != generation \
                    or handle.state in (_RESTARTING, _DISABLED, _CLOSED):
                return
            exit_code = handle.proc.poll() if handle.proc else None
            if reason is None:
                reason = _classify_exit(exit_code)
            slot = handle.inflight
            handle.inflight = None
            self._deaths_by_reason[reason] = \
                self._deaths_by_reason.get(reason, 0) + 1
            handle.consecutive_deaths += 1
            quarantined_now: list[str] = []
            if slot is not None:
                for rid in slot.ids:
                    count = self._death_counts.get(rid, 0) + 1
                    self._death_counts[rid] = count
                    if count >= self.quarantine_threshold:
                        self._quarantined.add(rid)
                        quarantined_now.append(rid)
            now = time.monotonic()
            handle.restart_times = [
                t for t in handle.restart_times
                if now - t <= self.restart_window_s]
            if len(handle.restart_times) >= self.restart_budget:
                handle.state = _DISABLED
            else:
                handle.restart_times.append(now)
                handle.restarts += 1
                self._restarts_total += 1
                backoff = min(
                    self.backoff_cap_s,
                    self.backoff_base_s
                    * (2 ** max(0, handle.consecutive_deaths - 1)))
                handle.restart_at = now + backoff
                handle.state = _RESTARTING
        if slot is not None:
            detail = ""
            if quarantined_now:
                detail = (f"; quarantined poison request(s) "
                          f"{', '.join(sorted(quarantined_now))}")
            slot.resolve(None, WorkerCrashError(
                f"worker {handle.index} died ({reason}) with request(s) "
                f"{', '.join(slot.ids)} in flight{detail}",
                worker=handle.index, reason=reason, exit_code=exit_code))

    # -- request path ----------------------------------------------------------

    def quarantined(self, request_ids) -> set[str]:
        """The subset of ``request_ids`` that is quarantined as poison."""
        with self._lock:
            return {rid for rid in request_ids if rid in self._quarantined}

    def run(
        self,
        worker: int,
        backend: str,
        feeds: dict[str, np.ndarray],
        deadline_ms: float | None = None,
        request_ids: tuple[str, ...] = (),
    ) -> dict[str, np.ndarray]:
        """Execute one batch on ``worker``; raises structurally on death.

        Raises:
            PoisonRequestError: a request id is quarantined.
            WorkerCrashError: the worker is down/restarting/disabled, died
                mid-request, or overstayed the request deadline + grace
                (in which case it is killed here — a worker stuck on a
                request is indistinguishable from a hung native call).
        """
        ids = tuple(str(rid) for rid in request_ids)
        poisoned = self.quarantined(ids)
        if poisoned:
            raise PoisonRequestError(tuple(sorted(poisoned)))
        handle = self._handles[worker]
        with handle.request_lock:
            with self._lock:
                if self._closed:
                    raise WorkerCrashError(
                        "supervisor is closed", worker=worker,
                        reason="closed")
                if handle.state != _READY:
                    raise WorkerCrashError(
                        f"worker {worker} is {handle.state}",
                        worker=worker, reason=handle.state)
                handle.seq += 1
                slot = _Slot(handle.seq, ids)
                handle.inflight = slot
                generation = handle.generation
                proc = handle.proc
            meta, blob = pack_arrays(feeds)
            header = {
                "kind": "run", "seq": slot.seq, "ids": list(ids),
                "backend": backend, "deadline_ms": deadline_ms,
                "arrays": meta,
            }
            try:
                with handle.stdin_lock:
                    write_frame(proc.stdin, header, blob)
            except (OSError, ValueError):
                self._reap(handle, generation, reason="pipe-broken")
            timeout = self.request_timeout_s
            if deadline_ms is not None:
                timeout = deadline_ms / 1e3 + self.deadline_grace_s
            if not slot.event.wait(timeout):
                proc.kill()
                self._reap(handle, generation, reason="request-timeout")
                slot.event.wait(1.0)
            if slot.error is not None:
                raise slot.error
            if slot.outputs is None:
                raise WorkerCrashError(
                    f"worker {worker} produced no outcome",
                    worker=worker, reason="unresolved")
            return slot.outputs

    # -- chaos hooks -----------------------------------------------------------

    def kill_worker(self, worker: int, sig: int = signal.SIGKILL) -> int | None:
        """Kill one worker process (chaos hook); returns the pid killed.

        Blocks until the process is actually gone (signal delivery is
        asynchronous), so callers can observe the death — ``alive_workers``
        dropping, then recovering — without racing the kernel.
        """
        with self._lock:
            handle = self._handles[worker]
            proc = handle.proc
            if proc is None or proc.poll() is not None:
                return None
            pid = proc.pid
        os.kill(pid, sig)
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            pass  # stuck in an uninterruptible state; the monitor will see it
        return pid

    def alive_workers(self) -> int:
        with self._lock:
            return sum(
                1 for handle in self._handles
                if handle.state == _READY and handle.proc is not None
                and handle.proc.poll() is None)

    # -- health ----------------------------------------------------------------

    def stats(self) -> SupervisorStats:
        with self._lock:
            slots = tuple(
                WorkerSnapshot(
                    index=handle.index,
                    state=handle.state,
                    pid=(handle.proc.pid if handle.proc is not None
                         and handle.proc.poll() is None else None),
                    restarts=handle.restarts,
                    consecutive_deaths=handle.consecutive_deaths,
                    inflight_ids=(handle.inflight.ids
                                  if handle.inflight else ()),
                )
                for handle in self._handles)
            return SupervisorStats(
                workers=self.workers,
                alive=sum(1 for s in slots
                          if s.state == _READY and s.pid is not None),
                disabled=sum(1 for s in slots if s.state == _DISABLED),
                restarts=self._restarts_total,
                deaths=dict(self._deaths_by_reason),
                quarantined=tuple(sorted(self._quarantined)),
                slots=slots,
            )

    # -- lifecycle -------------------------------------------------------------

    def close(self, timeout_s: float = 2.0) -> None:
        """Shut every worker down (politely, then firmly)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        for handle in handles:
            with self._lock:
                handle.state = _CLOSED
                proc = handle.proc
                slot = handle.inflight
                handle.inflight = None
            if slot is not None:
                slot.resolve(None, WorkerCrashError(
                    f"worker {handle.index} shut down with request(s) "
                    f"{', '.join(slot.ids)} in flight",
                    worker=handle.index, reason="closed"))
            if proc is None:
                continue
            try:
                with handle.stdin_lock:
                    write_frame(proc.stdin, {"kind": "shutdown"})
                    proc.stdin.close()
            except (OSError, ValueError):
                pass
            try:
                proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=timeout_s)
        if self._monitor is not None and self._monitor.is_alive() \
                and threading.current_thread() is not self._monitor:
            self._monitor.join(timeout=timeout_s)

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # best effort; never raise from a finalizer
        try:
            self.close(timeout_s=0.2)
        except Exception:  # noqa: BLE001
            pass


def _classify_exit(exit_code: int | None) -> str:
    if exit_code is None:
        return "exited"
    if exit_code == worker_mod.EXIT_CRASH:
        return "crashed"
    if exit_code in (worker_mod.EXIT_OOM, -signal.SIGKILL):
        return "oom-killed" if exit_code == worker_mod.EXIT_OOM else "killed"
    if exit_code == worker_mod.EXIT_INIT_FAILED:
        return "init-failed"
    if exit_code < 0:
        return "signaled"
    return "exited"


def _remote_error(header: dict) -> Exception:
    """Rebuild a structured error from a worker ``err`` frame."""
    from repro import errors as errors_mod

    name = str(header.get("error_type") or "ExecutionError")
    message = str(header.get("message") or "")
    candidate = getattr(errors_mod, name, None)
    if (isinstance(candidate, type)
            and issubclass(candidate, errors_mod.OrpheusError)):
        try:
            return candidate(message)
        except TypeError:
            pass  # error type with required kwargs; fall through
    return errors_mod.ExecutionError(f"{name}: {message}")


# -- pool facade ---------------------------------------------------------------


class _WorkerSession:
    """Session-shaped proxy for one (worker, backend) slot.

    Quacks like an ``InferenceSession`` for the dispatcher's purposes;
    ``accepts_request_ids`` tells the service to thread request ids
    through so deaths can be attributed for quarantine.
    """

    accepts_request_ids = True

    def __init__(self, supervisor: WorkerSupervisor, worker: int,
                 backend: str) -> None:
        self._supervisor = supervisor
        self._worker = worker
        self._backend = backend

    def run(self, feeds: dict, deadline_ms: float | None = None,
            request_ids: tuple[str, ...] = ()) -> dict:
        return self._supervisor.run(
            self._worker, self._backend, feeds,
            deadline_ms=deadline_ms, request_ids=request_ids)


class ProcessWorkerPool:
    """The :class:`~repro.serve.pool.SessionPool` surface, process-backed.

    Drop-in for ``InferenceService(pool=...)``: exposes the same
    ``backends`` / ``workers`` / ``batch`` / ``input_name`` /
    ``session()`` shape, but every session proxies to a supervised
    process. Extra surface the service discovers by duck typing:
    ``sample_shape`` (from the workers' hello), ``quarantined()`` (the
    poison filter), and ``close()`` (shuts the supervisor down).
    """

    def __init__(self, supervisor: WorkerSupervisor) -> None:
        self.supervisor = supervisor
        self.backends = supervisor.backends
        self.workers = supervisor.workers
        self.batch = supervisor.batch
        self.model_name = supervisor.model_name
        self._sessions = {
            (backend, worker): _WorkerSession(supervisor, worker, backend)
            for backend in supervisor.backends
            for worker in range(supervisor.workers)
        }

    @property
    def input_name(self) -> str:
        return self.supervisor.input_name

    @property
    def sample_shape(self) -> tuple[int, ...] | None:
        return self.supervisor.sample_shape

    @property
    def engine_hits(self) -> dict[str, bool]:
        return dict(self.supervisor.engine_hits)

    def session(self, backend: str, worker: int) -> _WorkerSession:
        return self._sessions[(backend, worker)]

    def sessions(self, backend: str) -> list[_WorkerSession]:
        return [self._sessions[(backend, worker)]
                for worker in range(self.workers)]

    def quarantined(self, request_ids) -> set[str]:
        return self.supervisor.quarantined(request_ids)

    def close(self) -> None:
        self.supervisor.close()

    def __len__(self) -> int:
        return len(self._sessions)

    def robustness_report(self):
        """Kernel-level telemetry stays inside the worker processes.

        Process isolation trades in-process introspection for
        containment; supervision-level telemetry (deaths, restarts,
        quarantine) lives in ``supervisor.stats()`` instead.
        """
        from repro.serve.pool import PoolRobustnessReport

        return PoolRobustnessReport(
            runs=0, fallback_events=0, recovered=0, exhausted=0,
            injected_faults=0,
            by_backend={
                backend: {"runs": 0, "fallback_events": 0,
                          "injected_faults": 0}
                for backend in self.backends
            })
