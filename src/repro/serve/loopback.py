"""``@loopback``: a diagnostic model for exercising the serving machinery.

Supervision, protocol, chaos, and drain behaviour are properties of the
*serving* layer, not of any particular network — and spawning four worker
processes that each compile a CNN makes those tests and smoke jobs pay
seconds for nothing. Passing the model name ``@loopback`` to
:class:`~repro.serve.pool.SessionPool`, ``InferenceService``, the
``serve`` / ``serve-chaos`` CLI verbs, or a worker spec builds this
trivial session instead: output is ``input * 2`` under a configurable
service delay. The arithmetic is checkable end to end (the supervisor
tests assert the doubled values survive the pipe round-trip) while
startup stays in milliseconds.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

import numpy as np

from repro.runtime.executor import RobustnessReport

#: Model-name sentinel that builds a LoopbackSession instead of a graph.
LOOPBACK_MODEL = "@loopback"

#: Per-sample input shape the loopback model accepts.
LOOPBACK_SAMPLE_SHAPE = (4,)

LOOPBACK_INPUT = "input"
LOOPBACK_OUTPUT = "out"


class LoopbackSession:
    """Session double: ``out = input * 2`` after ``delay_s`` of "work".

    Implements the slice of ``InferenceSession`` the serving layer uses
    (``run`` with a ``deadline_ms`` keyword, ``robustness_report``, and a
    ``graph`` shim exposing the input shape) so it can stand behind both
    the threaded pool and a process worker without special-casing.
    """

    def __init__(self, backend: str = "orpheus", batch: int = 1,
                 delay_s: float = 0.0) -> None:
        self.backend = backend
        self.delay_s = delay_s
        self.runs = 0
        shape = (batch, *LOOPBACK_SAMPLE_SHAPE)
        self.graph = SimpleNamespace(
            inputs=[SimpleNamespace(name=LOOPBACK_INPUT, shape=shape)],
            input_names=[LOOPBACK_INPUT])

    def run(self, feeds: dict, deadline_ms: float | None = None) -> dict:
        self.runs += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        batch = np.asarray(next(iter(feeds.values())))
        return {LOOPBACK_OUTPUT: batch * 2.0}

    def robustness_report(self) -> RobustnessReport:
        return RobustnessReport(
            runs=self.runs, fallback_events=(), injected_faults=())
