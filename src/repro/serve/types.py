"""Request/response vocabulary of the serving layer.

Every request submitted to an :class:`~repro.serve.service.InferenceService`
reaches exactly one *terminal outcome* — :class:`Completed`,
:class:`Rejected`, or :class:`Failed`. Saturation, faults, and shutdown all
surface as structured values (never unbounded latency, never a silently
dropped request): that accounting is the serving layer's headline property,
and the load generator asserts it end to end.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

#: Admission/shedding reasons a :class:`Rejected` response may carry.
SHED_REASONS = (
    "queue-full",        # bounded queue at capacity
    "overload",          # estimated wait exceeds the request's deadline
    "breaker-open",      # every backend's circuit breaker is open
    "expired-in-queue",  # deadline passed before the dispatcher got to it
    "draining",          # graceful shutdown: in-flight finishes, new rejected
    "stopped",           # service already shut down
    "quarantined",       # poison request: killed its worker twice already
)


@dataclasses.dataclass(frozen=True)
class ServeRequest:
    """One admitted inference request (a single sample, batch coalesced later).

    Attributes:
        id: caller-supplied or auto-assigned identifier.
        sample: one input sample *without* the batch axis (e.g. CHW).
        deadline_ms: wall-clock budget from submission, or None.
        submitted_at: ``time.monotonic()`` at admission.
    """

    id: str
    sample: np.ndarray
    deadline_ms: float | None
    submitted_at: float

    @property
    def deadline_at(self) -> float | None:
        if self.deadline_ms is None:
            return None
        return self.submitted_at + self.deadline_ms / 1e3

    def remaining_ms(self, now: float | None = None) -> float | None:
        """Milliseconds left on the deadline (negative = expired)."""
        if self.deadline_ms is None:
            return None
        now = time.monotonic() if now is None else now
        return (self.deadline_at - now) * 1e3


@dataclasses.dataclass(frozen=True)
class Completed:
    """A request that ran: its output plus serving metadata."""

    id: str
    output: np.ndarray
    latency_ms: float       # submission -> response, queueing included
    backend: str            # backend that actually served it
    batch_size: int         # how many requests shared its batch
    late: bool = False      # finished after its own deadline

    @property
    def ok(self) -> bool:
        return True


@dataclasses.dataclass(frozen=True)
class Rejected:
    """Load was shed, structurally: the reason and when to come back.

    ``retry_after_s`` is the service's estimate of when capacity frees up
    (``None`` when retrying is pointless, e.g. after shutdown).
    """

    id: str
    reason: str             # one of SHED_REASONS
    retry_after_s: float | None
    message: str = ""

    @property
    def ok(self) -> bool:
        return False

    def __str__(self) -> str:
        retry = (f", retry in {self.retry_after_s:.3f}s"
                 if self.retry_after_s is not None else "")
        return f"rejected[{self.reason}] {self.id}: {self.message}{retry}"


@dataclasses.dataclass(frozen=True)
class Failed:
    """A request that was admitted but whose execution failed everywhere."""

    id: str
    error_type: str
    message: str
    backend: str | None = None

    @property
    def ok(self) -> bool:
        return False

    def __str__(self) -> str:
        where = f" on {self.backend}" if self.backend else ""
        return f"failed {self.id}{where}: {self.error_type}: {self.message}"


Response = "Completed | Rejected | Failed"


class PendingResponse:
    """Handle for an admitted request; resolves to exactly one response."""

    def __init__(self, request: ServeRequest) -> None:
        self.request = request
        self._event = threading.Event()
        self._response: "Completed | Rejected | Failed | None" = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, response: "Completed | Rejected | Failed") -> None:
        """Deliver the terminal outcome (first resolution wins)."""
        if self._event.is_set():
            return
        self._response = response
        self._event.set()

    def result(self, timeout: float | None = None) -> "Completed | Rejected | Failed | None":
        """Block for the outcome; ``None`` only if ``timeout`` expires."""
        if not self._event.wait(timeout):
            return None
        return self._response
