"""Fault-contained serving: warm session pools with admission control.

The serving layer turns the runtime's per-run robustness machinery
(kernel fallback chains, deadlines, fault injection) into a long-lived
service that degrades gracefully under load and under backend failure:

* :class:`SessionPool` — load a model once, serve it from N worker
  sessions that share one copy of the weights.
* :class:`AdmissionQueue` — bounded queue with deadline-aware
  backpressure; overload becomes structured :class:`Rejected` replies.
* :class:`CircuitBreaker` — per-backend trip/half-open/recover routing.
* :class:`InferenceService` — dispatcher tying it together: dynamic
  batching, backend-chain rerouting, graceful drain, health/stats.
* :func:`run_load` / :func:`run_serve_bench` — the open-loop load
  harness and the scenario family behind ``BENCH_serve.json``.
"""

from repro.serve.breaker import BreakerSnapshot, CircuitBreaker
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.pool import PoolRobustnessReport, SessionPool
from repro.serve.queue import AdmissionQueue
from repro.serve.scenarios import run_serve_bench
from repro.serve.service import (
    InferenceService,
    ServeRobustnessReport,
    ServiceStats,
)
from repro.serve.types import (
    SHED_REASONS,
    Completed,
    Failed,
    PendingResponse,
    Rejected,
    ServeRequest,
)

__all__ = [
    "SHED_REASONS",
    "AdmissionQueue",
    "BreakerSnapshot",
    "CircuitBreaker",
    "Completed",
    "Failed",
    "InferenceService",
    "LoadReport",
    "PendingResponse",
    "PoolRobustnessReport",
    "Rejected",
    "ServeRequest",
    "ServeRobustnessReport",
    "ServiceStats",
    "SessionPool",
    "run_load",
    "run_serve_bench",
]
