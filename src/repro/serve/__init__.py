"""Fault-contained serving: warm session pools with admission control.

The serving layer turns the runtime's per-run robustness machinery
(kernel fallback chains, deadlines, fault injection) into a long-lived
service that degrades gracefully under load and under backend failure:

* :class:`SessionPool` — load a model once, serve it from N worker
  sessions that share one copy of the weights.
* :class:`AdmissionQueue` — bounded queue with deadline-aware
  backpressure; overload becomes structured :class:`Rejected` replies.
* :class:`CircuitBreaker` — per-backend trip/half-open/recover routing.
* :class:`InferenceService` — dispatcher tying it together: dynamic
  batching, backend-chain rerouting, graceful drain, health/stats.
* :class:`WorkerSupervisor` / :class:`ProcessWorkerPool` — the
  ``worker_mode="process"`` serving path: each pool slot is a separate
  OS process with heartbeats, restart backoff, and poison-request
  quarantine (crash containment).
* :func:`run_load` / :func:`run_serve_bench` / :func:`run_chaos_bench`
  — the open-loop load harness and the scenario families behind
  ``BENCH_serve.json`` and ``BENCH_chaos.json``.
"""

from repro.serve.breaker import BreakerSnapshot, CircuitBreaker
from repro.serve.chaos import run_chaos_bench
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.pool import PoolRobustnessReport, SessionPool
from repro.serve.queue import AdmissionQueue
from repro.serve.scenarios import run_serve_bench
from repro.serve.service import (
    InferenceService,
    ServeRobustnessReport,
    ServiceStats,
)
from repro.serve.supervisor import (
    ProcessWorkerPool,
    SupervisorStats,
    WorkerSupervisor,
)
from repro.serve.types import (
    SHED_REASONS,
    Completed,
    Failed,
    PendingResponse,
    Rejected,
    ServeRequest,
)

__all__ = [
    "SHED_REASONS",
    "AdmissionQueue",
    "BreakerSnapshot",
    "CircuitBreaker",
    "Completed",
    "Failed",
    "InferenceService",
    "LoadReport",
    "PendingResponse",
    "PoolRobustnessReport",
    "ProcessWorkerPool",
    "Rejected",
    "ServeRequest",
    "ServeRobustnessReport",
    "ServiceStats",
    "SessionPool",
    "SupervisorStats",
    "WorkerSupervisor",
    "run_chaos_bench",
    "run_load",
    "run_serve_bench",
]
