"""Bounded request queue with admission control and backpressure.

Admission happens at submit time, before a request consumes any queue
capacity. Three policies convert saturation into structured
:class:`~repro.serve.types.Rejected` responses instead of unbounded
latency:

* **depth bound** — the queue holds at most ``capacity`` requests; at
  capacity new arrivals are shed (``queue-full``) with a drain-time
  estimate as ``retry_after_s``.
* **estimated-wait backpressure** — the controller keeps an EWMA of
  per-item service time; a request whose estimated queueing wait already
  exceeds its deadline is shed up front (``overload``) rather than
  admitted to expire in the queue.
* **deadline scrubbing** — the dispatcher re-checks deadlines when it
  dequeues; an admitted request whose deadline expired while waiting is
  resolved ``expired-in-queue`` (and counted as a deadline miss), never
  silently run late or dropped.

The queue also implements the *coalescing* side of dynamic batching: the
dispatcher takes one request (blocking), then gathers up to ``batch - 1``
more within a latency window, so single-sample arrivals amortize into one
batched execution without adding more than the window to anyone's latency.
"""

from __future__ import annotations

import collections
import random
import threading
import time

from repro.serve.types import PendingResponse, Rejected


class AdmissionQueue:
    """Thread-safe bounded FIFO of :class:`PendingResponse` with admission.

    ``retry_jitter_frac`` spreads ``retry_after_s`` hints by a bounded
    random factor in ``[1, 1 + frac]`` so that a burst of simultaneous
    rejections does not come back as a synchronized retry stampede. The
    jitter stream is seeded (``jitter_seed``) so tests and benchmarks see
    a deterministic sequence of hints.
    """

    def __init__(
        self,
        capacity: int = 64,
        workers: int = 1,
        batch: int = 1,
        ewma_alpha: float = 0.2,
        initial_service_s: float = 0.05,
        retry_jitter_frac: float = 0.25,
        jitter_seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= retry_jitter_frac <= 1.0:
            raise ValueError(
                f"retry_jitter_frac must be in [0, 1], got {retry_jitter_frac}")
        self.capacity = capacity
        self.workers = max(1, workers)
        self.batch = max(1, batch)
        self._alpha = ewma_alpha
        # EWMA of one *batch* execution's wall time; seeded with a guess
        # that the first few observations quickly wash out.
        self._ewma_batch_s = initial_service_s   # guarded-by: _lock
        self._observations = 0                   # guarded-by: _lock
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._items: collections.deque[PendingResponse] = (  # guarded-by: _lock
            collections.deque())
        self._closed = False                     # guarded-by: _lock
        self.sheds: dict[str, int] = {}
        self._jitter_frac = retry_jitter_frac
        # shed() is called both under self._lock (try_admit) and lock-free
        # from dispatcher threads, so the jitter RNG gets its own lock.
        self._jitter_lock = threading.Lock()
        self._jitter_rng = random.Random(jitter_seed)  # guarded-by: _jitter_lock

    # -- admission -------------------------------------------------------------

    def estimated_wait_s(self, depth: int | None = None) -> float:
        """Expected queueing delay for a new arrival at the current depth.

        ``depth / (workers * batch)`` batches are ahead of the new arrival,
        plus its own batch; each costs one EWMA batch time. Deliberately a
        coarse model — it only needs to be right about *saturation*, where
        the queue is deep and the estimate is dominated by depth.
        """
        with self._lock:
            if depth is None:
                depth = len(self._items)
            ewma = self._ewma_batch_s
        batches_ahead = depth / (self.workers * self.batch)
        return (batches_ahead + 1.0) * ewma

    def try_admit(
        self, pending: PendingResponse, draining: bool = False,
    ) -> Rejected | None:
        """Admit ``pending`` or return the structured rejection.

        Never blocks: backpressure here is a *reply*, not a stall — the
        caller (or its client library) owns the retry policy, guided by
        ``retry_after_s``.
        """
        request = pending.request
        with self._lock:
            if self._closed:
                return self.shed(request.id, "stopped", None,
                                 "service is shut down")
            if draining:
                return self.shed(request.id, "draining", None,
                                 "service is draining; no new work accepted")
            depth = len(self._items)
            if depth >= self.capacity:
                drain_s = (depth / (self.workers * self.batch)) \
                    * self._ewma_batch_s
                return self.shed(
                    request.id, "queue-full", drain_s,
                    f"queue at capacity ({self.capacity})")
            if request.deadline_ms is not None:
                wait_s = ((depth / (self.workers * self.batch)) + 1.0) \
                    * self._ewma_batch_s
                if wait_s * 1e3 > request.deadline_ms:
                    return self.shed(
                        request.id, "overload",
                        max(0.0, wait_s - request.deadline_ms / 1e3),
                        f"estimated wait {wait_s * 1e3:.1f} ms exceeds "
                        f"deadline {request.deadline_ms:g} ms")
            self._items.append(pending)
            self._not_empty.notify()
            return None

    def shed(self, request_id: str, reason: str,
             retry_after_s: float | None, message: str) -> Rejected:
        """Build a structured rejection and count it (one ledger of sheds).

        Also used by the dispatcher for the shed reasons that are only
        decidable at dispatch time (``breaker-open``, ``expired-in-queue``)
        so every shed in the service lands in one counter dict. The counter
        update is a single dict-item write, safe under the GIL from any
        thread.
        """
        self.sheds[reason] = self.sheds.get(reason, 0) + 1
        if retry_after_s is not None and self._jitter_frac > 0.0:
            with self._jitter_lock:
                retry_after_s *= 1.0 + self._jitter_frac \
                    * self._jitter_rng.random()
        return Rejected(id=request_id, reason=reason,
                        retry_after_s=retry_after_s, message=message)

    # -- dispatch --------------------------------------------------------------

    def take_batch(
        self, max_batch: int, window_ms: float, poll_s: float = 0.05,
    ) -> list[PendingResponse]:
        """Take 1..``max_batch`` requests, coalescing within ``window_ms``.

        Blocks up to ``poll_s`` for the first request (returns ``[]`` on
        timeout or shutdown so dispatcher loops stay responsive), then
        gathers more until the batch is full or the window closes.
        """
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(poll_s)
            if not self._items:
                return []
            batch = [self._items.popleft()]
            if max_batch <= 1 or window_ms <= 0:
                deadline = None
            else:
                deadline = time.monotonic() + window_ms / 1e3
            while deadline is not None and len(batch) < max_batch:
                if self._items:
                    batch.append(self._items.popleft())
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._not_empty.wait(remaining):
                    break
            return batch

    # -- bookkeeping -----------------------------------------------------------

    def observe_batch(self, seconds: float) -> None:
        """Feed one batch execution's wall time into the EWMA.

        Non-finite or negative durations are discarded: a clock that
        steps backwards between two ``perf_counter`` reads (VM suspend,
        NTP on a broken monotonic source) must not poison the estimate
        that admission control steers by.
        """
        if not (seconds == seconds) or seconds in (
                float("inf"), float("-inf")) or seconds < 0.0:
            return
        with self._lock:
            self._ewma_batch_s += self._alpha * (seconds - self._ewma_batch_s)
            self._observations += 1

    @property
    def observations(self) -> int:
        """How many batch timings have actually fed the EWMA."""
        with self._lock:
            return self._observations

    @property
    def ewma_batch_s(self) -> float:
        with self._lock:
            return self._ewma_batch_s

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def close(self) -> list[PendingResponse]:
        """Stop accepting and return whatever was still queued.

        The caller must resolve the returned requests (the service rejects
        them as ``stopped``) — closing never silently drops work.
        """
        with self._not_empty:
            self._closed = True
            stranded = list(self._items)
            self._items.clear()
            self._not_empty.notify_all()
            return stranded
