"""Warm session pool: load a model once, serve it from N worker sessions.

The pool is built around the compiled-engine warm path: the model graph is
built once, compiled once per backend (through an
:class:`~repro.engine.cache.EngineCache` when one is given, so restarts
reuse the ``.oeng`` artifact), and every worker session is created with
:meth:`~repro.runtime.session.InferenceSession.from_engine` *from the same
in-memory engine*. Because an engine's graph is shared by reference, all
workers share one copy of the weights — N sessions cost N small executor
states, not N weight sets — and each warm start skips the whole prepare
pipeline.

Thread model: one worker owns one session per backend, and a session is
only ever run by its owning worker thread. Sessions share *read-only*
state (the graph, initializer arrays, frozen plans); everything mutable —
fallback logs, fault plans, kernel caches — is per session, which is what
makes the pool safe without locking the hot path. The per-backend fault
plans are instantiated per worker for the same reason: a
:class:`~repro.runtime.faults.FaultPlan` carries a stateful RNG.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping
from typing import Any

from repro.errors import EngineError, OrpheusError
from repro.runtime.executor import RobustnessReport
from repro.runtime.faults import parse_fault_plan


@dataclasses.dataclass(frozen=True)
class PoolRobustnessReport:
    """Pool-wide aggregation of every worker session's robustness report."""

    runs: int
    fallback_events: int
    recovered: int
    exhausted: int
    injected_faults: int
    by_backend: dict[str, dict[str, int]]

    def summary(self) -> str:
        lines = [f"pool robustness: {self.runs} run(s), "
                 f"{self.fallback_events} fallback event(s) "
                 f"({self.recovered} recovered, {self.exhausted} exhausted), "
                 f"{self.injected_faults} injected fault(s)"]
        for backend, counts in sorted(self.by_backend.items()):
            lines.append(
                f"  {backend:14s} runs={counts['runs']} "
                f"fallbacks={counts['fallback_events']} "
                f"injected={counts['injected_faults']}")
        return "\n".join(lines)


class SessionPool:
    """N worker sessions per backend, sharing one loaded copy of the model.

    Args:
        model: zoo model name or an already-built
            :class:`~repro.ir.graph.Graph`.
        backends: ordered backend chain; the service's dispatcher walks it
            when circuit breakers trip.
        workers: sessions per backend (= dispatcher thread count).
        batch: the batch size sessions are prepared at — the dynamic
            batcher coalesces up to this many single-sample requests.
        engine_cache: optional :class:`~repro.engine.cache.EngineCache`
            (or directory path); hits skip compilation entirely.
        autotune_cache: optional persistent
            :class:`~repro.engine.cache.AutotuneCache`, threaded through
            every compile (including the cold fallback after a failed
            engine load) so tuning warm-starts instead of re-racing.
        tune: autotune at compile time (see
            :func:`repro.engine.compiler.compile_graph`).
        fault_specs: backend name -> fault-spec string
            (:func:`~repro.runtime.faults.parse_fault_plan` mini-language);
            each worker session gets its *own* plan instance, seeded
            ``fault_seed + worker_index`` for determinism without sharing.
        session_kwargs: extra per-session run-time knobs (``deadline_ms``,
            ``node_timeout_ms``, ``memory_budget_bytes``, ``budget_mode``,
            ``check_numerics``, ``kernel_fallback``) — the PR 3 guardrails
            inherited by every worker.
        session_factory: test seam — ``factory(backend, worker_index)``
            returning a session-like object (``run``/``robustness_report``)
            replaces the whole build path.
    """

    def __init__(
        self,
        model: Any,
        backends: tuple[str, ...] = ("orpheus",),
        workers: int = 2,
        threads: int = 1,
        batch: int = 1,
        image_size: int | None = None,
        seed: int = 0,
        optimize: bool = True,
        engine_cache: Any = None,
        autotune_cache: Any = None,
        tune: bool = False,
        fault_specs: Mapping[str, str] | None = None,
        fault_seed: int = 0,
        session_kwargs: Mapping[str, Any] | None = None,
        session_factory: Callable[[str, int], Any] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not backends:
            raise ValueError("at least one backend is required")
        self.backends = tuple(backends)
        self.workers = workers
        self.batch = batch
        self.model_name = model if isinstance(model, str) else getattr(
            model, "name", "<graph>")
        self._fault_specs = dict(fault_specs or {})
        self._fault_seed = fault_seed
        self._session_kwargs = dict(session_kwargs or {})
        self.engine_hits: dict[str, bool] = {}
        self.input_name: str = "input"
        self._sessions: dict[str, list[Any]] = {}
        if session_factory is not None:
            for backend in self.backends:
                self._sessions[backend] = [
                    session_factory(backend, index)
                    for index in range(workers)
                ]
            return
        if model == "@loopback":
            # Diagnostic model (see repro.serve.loopback): serving-layer
            # behaviour without paying for a real graph build.
            from repro.serve.loopback import LoopbackSession

            for backend in self.backends:
                self._sessions[backend] = [
                    LoopbackSession(backend=backend, batch=batch)
                    for _ in range(workers)
                ]
            return
        self._build(model, threads=threads, batch=batch,
                    image_size=image_size, seed=seed, optimize=optimize,
                    engine_cache=engine_cache, autotune_cache=autotune_cache,
                    tune=tune)

    # -- construction ----------------------------------------------------------

    def _build(self, model: Any, threads: int, batch: int,
               image_size: int | None, seed: int, optimize: bool,
               engine_cache: Any, autotune_cache: Any, tune: bool) -> None:
        from repro.engine.cache import EngineCache
        from repro.models import zoo

        if isinstance(model, str):
            graph = zoo.build(model, batch=batch, image_size=image_size,
                              seed=seed)
        else:
            graph = model
        self.input_name = graph.input_names[0]
        if isinstance(engine_cache, str):
            engine_cache = EngineCache(engine_cache)
        for backend in self.backends:
            self._sessions[backend] = self._build_backend(
                graph, backend, threads=threads, batch=batch,
                image_size=image_size, seed=seed, optimize=optimize,
                engine_cache=engine_cache, autotune_cache=autotune_cache,
                tune=tune)

    def _build_backend(self, graph: Any, backend: str, threads: int,
                       batch: int, image_size: int | None, seed: int,
                       optimize: bool, engine_cache: Any,
                       autotune_cache: Any, tune: bool) -> list[Any]:
        from repro.engine.compiler import compile_graph
        from repro.runtime.session import InferenceSession

        try:
            if engine_cache is not None:
                engine, hit = engine_cache.load_or_compile(
                    graph, model=self.model_name, backend=backend,
                    threads=threads, optimize=optimize, batch=batch,
                    image_size=image_size, seed=seed, tune=tune,
                    autotune_cache=autotune_cache)
            else:
                engine = compile_graph(
                    graph, backend=backend, threads=threads,
                    optimize=optimize, tune=tune,
                    autotune_cache=autotune_cache,
                    metadata={"model": self.model_name, "pool": "serve"})
                hit = False
        except (EngineError, OrpheusError):
            # Compiled path unavailable (e.g. an exotic backend the engine
            # format cannot freeze): degrade to a shared-graph cold
            # prepare. Simplify once, share the simplified graph — weight
            # arrays are shared by reference either way.
            return self._build_cold(graph, backend, threads, optimize)
        self.engine_hits[backend] = hit
        sessions = []
        for index in range(self.workers):
            sessions.append(InferenceSession.from_engine(
                engine, backend=backend,
                **self._worker_kwargs(backend, index)))
        return sessions

    def _build_cold(self, graph: Any, backend: str, threads: int,
                    optimize: bool) -> list[Any]:
        from repro.runtime.session import InferenceSession

        working = graph
        if optimize:
            from repro.passes import default_pipeline
            working = default_pipeline().run(graph.copy())
        self.engine_hits[backend] = False
        return [
            InferenceSession(
                working, backend=backend, threads=threads, optimize=False,
                **self._worker_kwargs(backend, index))
            for index in range(self.workers)
        ]

    def _worker_kwargs(self, backend: str, index: int) -> dict[str, Any]:
        kwargs = dict(self._session_kwargs)
        spec = self._fault_specs.get(backend)
        if spec:
            kwargs["fault_plan"] = parse_fault_plan(
                spec, seed=self._fault_seed + index)
        return kwargs

    # -- access ----------------------------------------------------------------

    def session(self, backend: str, worker: int) -> Any:
        """The session owned by ``worker`` for ``backend``."""
        return self._sessions[backend][worker]

    def sessions(self, backend: str) -> list[Any]:
        return list(self._sessions[backend])

    def __len__(self) -> int:
        return sum(len(group) for group in self._sessions.values())

    # -- health ----------------------------------------------------------------

    def robustness_report(self) -> PoolRobustnessReport:
        """Aggregate every worker session's robustness report pool-wide."""
        runs = fallbacks = recovered = exhausted = injected = 0
        by_backend: dict[str, dict[str, int]] = {}
        for backend, group in self._sessions.items():
            counts = {"runs": 0, "fallback_events": 0, "injected_faults": 0}
            for session in group:
                report = getattr(session, "robustness_report", None)
                if report is None:
                    continue
                result: RobustnessReport = report()
                counts["runs"] += result.runs
                counts["fallback_events"] += len(result.fallback_events)
                counts["injected_faults"] += len(result.injected_faults)
                recovered += len(result.recovered)
                exhausted += len(result.exhausted)
            runs += counts["runs"]
            fallbacks += counts["fallback_events"]
            injected += counts["injected_faults"]
            by_backend[backend] = counts
        return PoolRobustnessReport(
            runs=runs, fallback_events=fallbacks, recovered=recovered,
            exhausted=exhausted, injected_faults=injected,
            by_backend=by_backend)
