"""Length-prefixed frame protocol between the supervisor and its workers.

Process workers talk to the :class:`~repro.serve.supervisor.WorkerSupervisor`
over plain pipes (the worker's stdin/stdout), so the wire format has to be
self-delimiting and corruption-evident. Each frame is::

    !I total_len | !I header_len | header (UTF-8 JSON) | blob (raw bytes)

``total_len`` covers everything after itself. The header is a small JSON
object whose ``kind`` field names the message (``hello``, ``run``, ``ok``,
``err``, ``beat``, ``shutdown``, ``bye``); the blob carries tensor bytes
described by the header's ``arrays`` metadata. Caps and exact-read loops
turn a truncated or garbage stream into a structured
:class:`~repro.errors.WorkerProtocolError` instead of a hang or an
unbounded allocation — a crashed worker must never corrupt the
supervisor.

Arrays cross the pipe as raw C-order bytes plus ``(name, dtype, shape)``
metadata — no pickling, so a worker can be rebuilt from any interpreter
that shares the numpy ABI and a hostile peer cannot execute code via the
frame stream.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO

import numpy as np

from repro.errors import WorkerProtocolError

#: Hard cap on one frame; a serving batch is a few MiB of activations, so
#: anything near this is corruption, not load.
MAX_FRAME_BYTES = 256 << 20

#: Header JSON is counters and shape metadata — kilobytes at most.
MAX_HEADER_BYTES = 1 << 20

_LEN = struct.Struct("!I")


def _read_exact(stream: BinaryIO, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a boundary.

    EOF *inside* a frame is corruption (the peer died mid-write) and
    raises; EOF before any byte of the request is the normal end of
    stream.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise WorkerProtocolError(
                f"stream ended {remaining} byte(s) short of a "
                f"{count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(stream: BinaryIO, header: dict[str, Any],
                blob: bytes = b"") -> None:
    """Serialize one frame and flush it.

    The caller owns write-side locking — workers interleave heartbeats
    and responses from two threads, and a torn frame is unrecoverable.
    """
    head = json.dumps(header, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(head) > MAX_HEADER_BYTES:
        raise WorkerProtocolError(
            f"header of {len(head)} bytes exceeds cap {MAX_HEADER_BYTES}")
    total = _LEN.size + len(head) + len(blob)
    if total > MAX_FRAME_BYTES:
        raise WorkerProtocolError(
            f"frame of {total} bytes exceeds cap {MAX_FRAME_BYTES}")
    stream.write(_LEN.pack(total) + _LEN.pack(len(head)) + head + blob)
    stream.flush()


def read_frame(stream: BinaryIO) -> tuple[dict[str, Any], bytes] | None:
    """Read one frame; ``None`` on clean EOF.

    Raises:
        WorkerProtocolError: truncated stream, oversized lengths,
            non-JSON or non-object header.
    """
    prefix = _read_exact(stream, _LEN.size)
    if prefix is None:
        return None
    (total,) = _LEN.unpack(prefix)
    if not _LEN.size <= total <= MAX_FRAME_BYTES:
        raise WorkerProtocolError(
            f"frame length {total} outside [{_LEN.size}, {MAX_FRAME_BYTES}]")
    payload = _read_exact(stream, total)
    if payload is None:
        raise WorkerProtocolError("stream ended before frame payload")
    (head_len,) = _LEN.unpack(payload[:_LEN.size])
    if head_len > total - _LEN.size or head_len > MAX_HEADER_BYTES:
        raise WorkerProtocolError(
            f"header length {head_len} exceeds frame payload or cap")
    head = payload[_LEN.size:_LEN.size + head_len]
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WorkerProtocolError(f"frame header is not JSON: {exc}") from None
    if not isinstance(header, dict):
        raise WorkerProtocolError(
            f"frame header must be an object, got {type(header).__name__}")
    return header, payload[_LEN.size + head_len:]


# -- tensor payloads -----------------------------------------------------------


def pack_arrays(arrays: dict[str, np.ndarray]) -> tuple[list[dict], bytes]:
    """``(metadata, blob)`` for a dict of arrays, concatenated in order."""
    meta: list[dict] = []
    parts: list[bytes] = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        meta.append({
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        })
        parts.append(array.tobytes())
    return meta, b"".join(parts)


def unpack_arrays(meta: list[dict], blob: bytes) -> dict[str, np.ndarray]:
    """Rebuild the array dict from :func:`pack_arrays` output.

    Sizes are recomputed from the metadata and checked against the blob,
    so a corrupt length cannot read past the buffer or alias frames.
    """
    arrays: dict[str, np.ndarray] = {}
    offset = 0
    for entry in meta:
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
            name = entry["name"]
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkerProtocolError(
                f"bad array metadata {entry!r}: {exc}") from None
        if any(dim < 0 for dim in shape):
            raise WorkerProtocolError(f"negative dim in shape {shape}")
        count = 1
        for dim in shape:
            count *= dim
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(blob):
            raise WorkerProtocolError(
                f"array {name!r} needs {nbytes} bytes at offset {offset}, "
                f"blob holds {len(blob)}")
        arrays[name] = np.frombuffer(
            blob, dtype=dtype, count=count, offset=offset).reshape(shape)
        offset += nbytes
    if offset != len(blob):
        raise WorkerProtocolError(
            f"{len(blob) - offset} trailing byte(s) after arrays")
    return arrays
