"""Open-loop load generator for :class:`~repro.serve.service.InferenceService`.

Open-loop matters: a closed-loop client (send, wait, send) slows down with
the server and can never *over*load it, hiding exactly the saturation
behaviour this harness exists to measure (the coordinated-omission trap).
Here arrivals are scheduled on a fixed clock at the requested rate across
``clients`` submitter threads — if the service falls behind, requests
keep arriving and admission control has to answer for every one of them.

The report closes the books: ``offered`` must equal completed + rejected +
failed + timed out, and ``silent_drops`` (requests that never reached a
terminal outcome) must be zero — the invariant the acceptance criteria
and the CI smoke job assert.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time

import numpy as np

from repro.serve.service import InferenceService
from repro.serve.types import Completed, Failed, Rejected


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on an empty sample."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(len(ordered) * q / 100.0))
    return ordered[min(rank, len(ordered)) - 1]


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """What one load run offered, and what came back."""

    offered: int
    completed: int
    rejected: dict[str, int]
    failed: int
    timed_out: int           # no terminal outcome within the wait bound
    duration_s: float
    target_rps: float
    latencies_ms: tuple[float, ...]     # accepted-and-completed only
    late_completions: int
    per_backend: dict[str, int]

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected.values())

    @property
    def silent_drops(self) -> int:
        """Requests that vanished without a structured outcome (must be 0)."""
        return self.offered - self.completed - self.total_rejected \
            - self.failed - self.timed_out

    @property
    def achieved_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def shed_rate(self) -> float:
        return self.total_rejected / self.offered if self.offered else 0.0

    def latency_ms(self, q: float) -> float:
        return percentile(list(self.latencies_ms), q)

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "rejected": dict(self.rejected),
            "failed": self.failed,
            "timed_out": self.timed_out,
            "silent_drops": self.silent_drops,
            "duration_s": round(self.duration_s, 3),
            "target_rps": round(self.target_rps, 2),
            "achieved_rps": round(self.achieved_rps, 2),
            "shed_rate": round(self.shed_rate, 4),
            "late_completions": self.late_completions,
            "latency_ms": {
                "p50": round(self.latency_ms(50), 3),
                "p90": round(self.latency_ms(90), 3),
                "p99": round(self.latency_ms(99), 3),
                "max": round(max(self.latencies_ms, default=0.0), 3),
            },
            "per_backend": dict(self.per_backend),
        }


def run_load(
    service: InferenceService,
    rps: float,
    duration_s: float,
    clients: int = 2,
    deadline_ms: float | None = None,
    sample: np.ndarray | None = None,
    seed: int = 0,
    result_timeout_s: float = 30.0,
) -> LoadReport:
    """Drive ``service`` open-loop at ``rps`` for ``duration_s`` seconds.

    ``clients`` submitter threads each carry ``rps / clients``; arrival
    times are fixed up front (uniform spacing with a small seeded jitter),
    so the offered load does not adapt to the service's behaviour. Each
    submitter then waits for its requests' outcomes; a request with no
    outcome after ``result_timeout_s`` counts as ``timed_out`` (and shows
    up in ``silent_drops`` accounting only if the service *also* never
    resolves it).
    """
    if rps <= 0:
        raise ValueError(f"rps must be > 0, got {rps}")
    clients = max(1, clients)
    rng = np.random.default_rng(seed)
    if sample is None:
        shape = service._sample_shape or (4,)
        sample = rng.standard_normal(shape).astype(np.float32)

    per_client = rps / clients
    total_per_client = max(1, int(round(per_client * duration_s)))
    lock = threading.Lock()
    latencies: list[float] = []
    rejected: dict[str, int] = {}
    per_backend: dict[str, int] = {}
    counters = {"completed": 0, "failed": 0, "timed_out": 0, "offered": 0,
                "late": 0}

    def client(index: int) -> None:
        spacing = 1.0 / per_client
        jitter = rng.uniform(0, spacing)
        start = time.monotonic() + 0.01
        pendings = []
        for n in range(total_per_client):
            due = start + n * spacing + (jitter if n == 0 else 0.0)
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            with lock:
                counters["offered"] += 1
            outcome = service.submit(
                sample, deadline_ms=deadline_ms,
                request_id=f"c{index}-{n}")
            if isinstance(outcome, Rejected):
                with lock:
                    rejected[outcome.reason] = \
                        rejected.get(outcome.reason, 0) + 1
                continue
            pendings.append(outcome)
        for pending in pendings:
            result = pending.result(timeout=result_timeout_s)
            with lock:
                if result is None:
                    counters["timed_out"] += 1
                elif isinstance(result, Completed):
                    counters["completed"] += 1
                    counters["late"] += int(result.late)
                    latencies.append(result.latency_ms)
                    per_backend[result.backend] = \
                        per_backend.get(result.backend, 0) + 1
                elif isinstance(result, Rejected):
                    rejected[result.reason] = \
                        rejected.get(result.reason, 0) + 1
                elif isinstance(result, Failed):
                    counters["failed"] += 1

    started = time.monotonic()
    threads = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return LoadReport(
        offered=counters["offered"],
        completed=counters["completed"],
        rejected=rejected,
        failed=counters["failed"],
        timed_out=counters["timed_out"],
        duration_s=elapsed,
        target_rps=rps,
        latencies_ms=tuple(latencies),
        late_completions=counters["late"],
        per_backend=per_backend,
    )
