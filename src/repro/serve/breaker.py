"""Per-backend circuit breakers.

A backend whose kernels keep exhausting their fallback chains (or keep
blowing deadlines) should stop receiving traffic *before* every request
pays its failure latency. The classic three-state breaker:

* **closed** — traffic flows; consecutive failures are counted.
* **open** — tripped after ``failure_threshold`` consecutive failures; all
  traffic is refused for ``cooldown_s`` so the dispatcher routes to the
  next backend in the chain.
* **half-open** — after the cooldown, a single probe batch is let through.
  Success closes the breaker (recovery); failure re-opens it for another
  cooldown.

All transitions are thread-safe; the clock is injectable so tests can
drive state deterministically.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclasses.dataclass(frozen=True)
class BreakerSnapshot:
    """Point-in-time view of one breaker, for stats/health surfaces."""

    backend: str
    state: str
    consecutive_failures: int
    trips: int           # closed/half-open -> open transitions
    recoveries: int      # half-open -> closed transitions (probe succeeded)
    probes: int          # half-open trial batches admitted
    failures: int        # total recorded failures
    successes: int       # total recorded successes
    retry_after_s: float | None   # time until half-open, when open


class CircuitBreaker:
    """Trip-on-consecutive-failures breaker guarding one backend."""

    def __init__(
        self,
        backend: str,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.backend = backend
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED            # guarded-by: _lock
        self._consecutive = 0           # guarded-by: _lock
        self._opened_at = 0.0           # guarded-by: _lock
        self._probe_in_flight = False   # guarded-by: _lock
        self._trips = 0                 # guarded-by: _lock
        self._recoveries = 0            # guarded-by: _lock
        self._probes = 0                # guarded-by: _lock
        self._failures = 0              # guarded-by: _lock
        self._successes = 0             # guarded-by: _lock

    # -- routing ---------------------------------------------------------------

    def allow(self) -> bool:
        """May a batch be dispatched to this backend right now?

        In the open state this flips to half-open once the cooldown has
        elapsed and admits exactly one probe at a time; concurrent callers
        see ``False`` until the probe resolves.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            now = self._clock()
            if self._state == OPEN:
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._state = HALF_OPEN
                self._probe_in_flight = False
            # half-open: single probe at a time
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            self._probes += 1
            return True

    def retry_after_s(self) -> float | None:
        """Seconds until the next probe is possible (None when not open)."""
        with self._lock:
            if self._state != OPEN:
                return None
            remaining = self.cooldown_s - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    # -- outcome recording -----------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._successes += 1
            self._consecutive = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._recoveries += 1
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._consecutive += 1
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._trip()
            elif (self._state == CLOSED
                  and self._consecutive >= self.failure_threshold):
                self._trip()
            self._probe_in_flight = False

    def _trip(self) -> None:  # requires-lock: _lock
        self._state = OPEN
        self._opened_at = self._clock()
        self._trips += 1
        self._consecutive = 0

    # -- introspection ---------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            if (self._state == OPEN
                    and self._clock() - self._opened_at >= self.cooldown_s):
                return HALF_OPEN  # what allow() would transition to
            return self._state

    def snapshot(self) -> BreakerSnapshot:
        with self._lock:
            retry = None
            if self._state == OPEN:
                retry = max(
                    0.0, self.cooldown_s - (self._clock() - self._opened_at))
            return BreakerSnapshot(
                backend=self.backend,
                state=self._state,
                consecutive_failures=self._consecutive,
                trips=self._trips,
                recoveries=self._recoveries,
                probes=self._probes,
                failures=self._failures,
                successes=self._successes,
                retry_after_s=retry,
            )
