"""Graph intermediate representation: nodes, graphs, shapes, construction."""

from repro.ir.attributes import Attributes
from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph, ValueInfo
from repro.ir.node import Node
from repro.ir.printer import print_graph, summarize
from repro.ir.shape_inference import (
    InferenceContext,
    broadcast_shapes,
    infer_shapes,
    register_shape_fn,
    resolve_conv_pads,
    supported_ops,
)

__all__ = [
    "Attributes",
    "Graph",
    "GraphBuilder",
    "InferenceContext",
    "Node",
    "ValueInfo",
    "broadcast_shapes",
    "infer_shapes",
    "print_graph",
    "register_shape_fn",
    "resolve_conv_pads",
    "summarize",
    "supported_ops",
]
