"""Graphviz DOT export of IR graphs.

``to_dot`` renders a graph as DOT source (viewable with ``dot -Tsvg`` or
any online Graphviz viewer) — the quickest way to eyeball what the
simplification passes did to an imported model. No graphviz dependency:
DOT is plain text.
"""

from __future__ import annotations

from repro.ir.graph import Graph
from repro.ir.printer import format_shape
from repro.ir.shape_inference import infer_shapes

# One colour family per op family; everything else is grey.
_OP_COLORS = {
    "Conv": "#4e79a7",
    "QLinearConv": "#2f5a82",
    "Gemm": "#59a14f",
    "MatMul": "#59a14f",
    "BatchNormalization": "#f28e2b",
    "Relu": "#e15759",
    "Clip": "#e15759",
    "Sigmoid": "#e15759",
    "Softmax": "#e15759",
    "MaxPool": "#b07aa1",
    "AveragePool": "#b07aa1",
    "GlobalAveragePool": "#b07aa1",
    "Add": "#edc948",
    "Concat": "#76b7b2",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(graph: Graph, with_shapes: bool = True,
           rankdir: str = "TB") -> str:
    """Render ``graph`` as Graphviz DOT source."""
    shapes: dict[str, str] = {}
    if with_shapes:
        try:
            values = infer_shapes(graph)
            shapes = {name: format_shape(shape)
                      for name, (shape, _dtype) in values.items()}
        except Exception:
            shapes = {}

    lines = [
        f'digraph "{_escape(graph.name)}" {{',
        f"  rankdir={rankdir};",
        '  node [shape=box, style="rounded,filled", fontname="monospace",'
        ' fontsize=10, fillcolor="#eeeeee"];',
        '  edge [fontname="monospace", fontsize=8, color="#888888"];',
    ]
    # Graph inputs as ovals.
    for info in graph.inputs:
        label = f"{info.name}\\n{format_shape(info.shape)}"
        lines.append(
            f'  "val:{_escape(info.name)}" [label="{label}", shape=oval,'
            ' fillcolor="#ffffff"];')
    producers = graph.producers()
    for index, node in enumerate(graph.toposort()):
        color = _OP_COLORS.get(node.op_type, "#bbbbbb")
        extra = ""
        if node.op_type == "Conv":
            kernel = node.attrs.get_ints("kernel_shape", ())
            strides = node.attrs.get_ints("strides", (1, 1))
            group = node.attrs.get_int("group", 1)
            extra = f"\\n{'x'.join(map(str, kernel))}"
            if strides != (1, 1):
                extra += f" /{strides[0]}"
            if group > 1:
                extra += f" g{group}"
            if "activation" in node.attrs:
                extra += f" +{node.attrs.get_str('activation')}"
        # extra is generated text containing intentional DOT "\n" escapes;
        # only the op type (potentially user-controlled) needs escaping.
        label = f"{_escape(node.op_type)}{extra}"
        lines.append(
            f'  "node:{index}" [label="{label}", '
            f'fillcolor="{color}", fontcolor="white"];')
    node_ids = {id(node): f"node:{index}"
                for index, node in enumerate(graph.toposort())}
    for node in graph.nodes:
        target = node_ids[id(node)]
        for inp in node.present_inputs:
            if inp in graph.initializers:
                continue  # weights stay implicit; they would swamp the plot
            producer = producers.get(inp)
            source = (node_ids[id(producer)] if producer is not None
                      else f"val:{inp}")
            annotation = shapes.get(inp, "")
            label = f' [label="{annotation}"]' if annotation else ""
            lines.append(f'  "{source}" -> "{target}"{label};')
    for info in graph.outputs:
        lines.append(
            f'  "out:{_escape(info.name)}" [label="{_escape(info.name)}",'
            ' shape=oval, fillcolor="#ffffff"];')
        producer = producers.get(info.name)
        if producer is not None:
            lines.append(
                f'  "{node_ids[id(producer)]}" -> "out:{_escape(info.name)}";')
    lines.append("}")
    return "\n".join(lines)


def save_dot(graph: Graph, path: str, with_shapes: bool = True) -> None:
    """Write DOT source to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(graph, with_shapes=with_shapes) + "\n")
