"""Fluent construction of IR graphs.

``GraphBuilder`` generates unique value names, tracks a single "current"
graph, and offers one method per common operator, so model-zoo code reads
like a network definition:

>>> b = GraphBuilder("net")
>>> x = b.input("x", (1, 3, 32, 32))
>>> y = b.relu(b.conv(x, out_channels=16, kernel=3, pad=1))
>>> b.output(b.global_average_pool(y))
>>> graph = b.finish()
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ir.graph import Graph, ValueInfo
from repro.ir.node import Node
from repro.ir.shape_inference import infer_shapes
from repro.tensor.dtype import DType


def _pair(value: int | Sequence[int]) -> tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    first, second = value
    return (int(first), int(second))


class GraphBuilder:
    """Incrementally builds a validated :class:`Graph`.

    Weight tensors are drawn from a seeded generator so any model built with
    the same seed is bit-identical — the reproducibility requirement for the
    benchmark harness.
    """

    def __init__(self, name: str = "graph", seed: int = 0) -> None:
        self._graph = Graph(name=name)
        self._rng = np.random.default_rng(seed)
        self._counter = 0
        self._shapes: dict[str, tuple[int, ...]] = {}

    # -- naming & values -------------------------------------------------------

    def fresh(self, hint: str) -> str:
        """A graph-unique value name based on ``hint``."""
        self._counter += 1
        return f"{hint}_{self._counter}"

    def input(
        self, name: str, shape: Sequence[int], dtype: DType = DType.FLOAT32
    ) -> str:
        self._graph.inputs.append(ValueInfo(name, tuple(shape), dtype))
        self._shapes[name] = tuple(int(dim) for dim in shape)
        return name

    def output(self, value: str, dtype: DType = DType.FLOAT32) -> str:
        shape = self._shapes.get(value, ())
        self._graph.outputs.append(ValueInfo(value, shape, dtype))
        return value

    def constant(self, array: np.ndarray, hint: str = "const") -> str:
        """Register ``array`` as a named initializer and return the name."""
        name = self.fresh(hint)
        self._graph.add_initializer(name, np.ascontiguousarray(array))
        self._shapes[name] = tuple(array.shape)
        return name

    def weight(
        self, shape: Sequence[int], hint: str = "w", scale: float | None = None
    ) -> str:
        """A fresh He-initialised float32 weight initializer."""
        shape = tuple(int(dim) for dim in shape)
        if scale is None:
            fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
            scale = float(np.sqrt(2.0 / max(fan_in, 1)))
        data = (self._rng.standard_normal(shape) * scale).astype(np.float32)
        return self.constant(data, hint)

    def shape_of(self, value: str) -> tuple[int, ...]:
        """Statically known shape of ``value`` (tracked incrementally)."""
        return self._shapes[value]

    # -- generic node ------------------------------------------------------------

    def node(
        self,
        op_type: str,
        inputs: Sequence[str],
        attrs: dict[str, object] | None = None,
        num_outputs: int = 1,
        name: str = "",
    ) -> str | list[str]:
        """Append a node; returns its output name (or names)."""
        outputs = [self.fresh(op_type.lower()) for _ in range(num_outputs)]
        self._graph.add_node(Node(op_type, list(inputs), outputs, attrs, name=name))
        self._track_shapes()
        return outputs[0] if num_outputs == 1 else outputs

    def _track_shapes(self) -> None:
        # Re-infer incrementally; graphs under construction have no declared
        # outputs yet, so inference runs over all defined values.
        values = infer_shapes(self._graph)
        self._shapes = {name: shape for name, (shape, _dtype) in values.items()}

    # -- convolution family --------------------------------------------------------

    def conv(
        self,
        x: str,
        out_channels: int,
        kernel: int | Sequence[int],
        stride: int | Sequence[int] = 1,
        pad: int | Sequence[int] = 0,
        dilation: int | Sequence[int] = 1,
        group: int = 1,
        bias: bool = True,
        name: str = "",
    ) -> str:
        """Conv2d with freshly initialised weights (NCHW / OIHW)."""
        in_channels = self.shape_of(x)[1]
        kh, kw = _pair(kernel)
        if in_channels % group:
            raise ValueError(f"in_channels {in_channels} not divisible by group {group}")
        w = self.weight((out_channels, in_channels // group, kh, kw), hint="conv_w")
        inputs = [x, w]
        if bias:
            inputs.append(self.constant(
                np.zeros(out_channels, dtype=np.float32), hint="conv_b"))
        ph, pw = _pair(pad)
        attrs = {
            "kernel_shape": (kh, kw),
            "strides": _pair(stride),
            "pads": (ph, pw, ph, pw),
            "dilations": _pair(dilation),
            "group": group,
        }
        return self.node("Conv", inputs, attrs, name=name)  # type: ignore[return-value]

    def depthwise_conv(
        self,
        x: str,
        kernel: int | Sequence[int] = 3,
        stride: int | Sequence[int] = 1,
        pad: int | Sequence[int] = 1,
        bias: bool = True,
        name: str = "",
    ) -> str:
        """Depthwise Conv2d: group == in_channels == out_channels."""
        channels = self.shape_of(x)[1]
        return self.conv(
            x, channels, kernel, stride=stride, pad=pad, group=channels,
            bias=bias, name=name,
        )

    def batch_norm(self, x: str, epsilon: float = 1e-5, name: str = "") -> str:
        channels = self.shape_of(x)[1]
        scale = self.constant(
            (1.0 + 0.1 * self._rng.standard_normal(channels)).astype(np.float32),
            hint="bn_scale")
        bias = self.constant(
            (0.1 * self._rng.standard_normal(channels)).astype(np.float32),
            hint="bn_bias")
        mean = self.constant(
            (0.1 * self._rng.standard_normal(channels)).astype(np.float32),
            hint="bn_mean")
        var = self.constant(
            (1.0 + 0.1 * np.abs(self._rng.standard_normal(channels))).astype(np.float32),
            hint="bn_var")
        return self.node(
            "BatchNormalization", [x, scale, bias, mean, var],
            {"epsilon": epsilon}, name=name,
        )  # type: ignore[return-value]

    # -- elementwise / activations ---------------------------------------------------

    def relu(self, x: str, name: str = "") -> str:
        return self.node("Relu", [x], name=name)  # type: ignore[return-value]

    def relu6(self, x: str, name: str = "") -> str:
        return self.node("Clip", [x], {"min": 0.0, "max": 6.0}, name=name)  # type: ignore[return-value]

    def sigmoid(self, x: str, name: str = "") -> str:
        return self.node("Sigmoid", [x], name=name)  # type: ignore[return-value]

    def softmax(self, x: str, axis: int = -1, name: str = "") -> str:
        return self.node("Softmax", [x], {"axis": axis}, name=name)  # type: ignore[return-value]

    def add(self, a: str, b: str, name: str = "") -> str:
        return self.node("Add", [a, b], name=name)  # type: ignore[return-value]

    def mul(self, a: str, b: str, name: str = "") -> str:
        return self.node("Mul", [a, b], name=name)  # type: ignore[return-value]

    def concat(self, values: Sequence[str], axis: int = 1, name: str = "") -> str:
        return self.node("Concat", list(values), {"axis": axis}, name=name)  # type: ignore[return-value]

    # -- pooling / shape ---------------------------------------------------------------

    def max_pool(
        self,
        x: str,
        kernel: int | Sequence[int],
        stride: int | Sequence[int] | None = None,
        pad: int | Sequence[int] = 0,
        name: str = "",
    ) -> str:
        kh, kw = _pair(kernel)
        ph, pw = _pair(pad)
        strides = _pair(stride) if stride is not None else (kh, kw)
        attrs = {"kernel_shape": (kh, kw), "strides": strides, "pads": (ph, pw, ph, pw)}
        return self.node("MaxPool", [x], attrs, name=name)  # type: ignore[return-value]

    def average_pool(
        self,
        x: str,
        kernel: int | Sequence[int],
        stride: int | Sequence[int] | None = None,
        pad: int | Sequence[int] = 0,
        count_include_pad: bool = False,
        name: str = "",
    ) -> str:
        kh, kw = _pair(kernel)
        ph, pw = _pair(pad)
        strides = _pair(stride) if stride is not None else (kh, kw)
        attrs = {
            "kernel_shape": (kh, kw),
            "strides": strides,
            "pads": (ph, pw, ph, pw),
            "count_include_pad": int(count_include_pad),
        }
        return self.node("AveragePool", [x], attrs, name=name)  # type: ignore[return-value]

    def global_average_pool(self, x: str, name: str = "") -> str:
        return self.node("GlobalAveragePool", [x], name=name)  # type: ignore[return-value]

    def flatten(self, x: str, axis: int = 1, name: str = "") -> str:
        return self.node("Flatten", [x], {"axis": axis}, name=name)  # type: ignore[return-value]

    def dense(self, x: str, out_features: int, bias: bool = True, name: str = "") -> str:
        """Gemm layer: ``y = x @ W.T + b`` with fresh weights."""
        in_features = self.shape_of(x)[-1]
        w = self.weight((out_features, in_features), hint="fc_w")
        inputs = [x, w]
        if bias:
            inputs.append(self.constant(
                np.zeros(out_features, dtype=np.float32), hint="fc_b"))
        return self.node("Gemm", inputs, {"transB": 1}, name=name)  # type: ignore[return-value]

    def dropout(self, x: str, ratio: float = 0.5, name: str = "") -> str:
        return self.node("Dropout", [x], {"ratio": ratio}, name=name)  # type: ignore[return-value]

    # -- composite blocks (the vocabulary the model zoo uses) -----------------------------

    def conv_bn_relu(
        self,
        x: str,
        out_channels: int,
        kernel: int | Sequence[int],
        stride: int | Sequence[int] = 1,
        pad: int | Sequence[int] = 0,
        group: int = 1,
        name: str = "",
    ) -> str:
        y = self.conv(
            x, out_channels, kernel, stride=stride, pad=pad, group=group,
            bias=False, name=name,
        )
        return self.relu(self.batch_norm(y))

    # -- finish ------------------------------------------------------------------------

    def finish(self) -> Graph:
        """Validate and return the constructed graph."""
        self._graph.validate()
        return self._graph
