"""Static shape inference over the IR.

Each supported operator registers a shape function; :func:`infer_shapes`
walks a graph in topological order and returns the shape and dtype of every
value. Unknown (symbolic) dimensions are represented as ``-1`` and flow
through ops that merely carry them (e.g. the batch dimension); ops that must
*compute* with an unknown dimension raise
:class:`~repro.errors.ShapeInferenceError`.

This is also the single source of truth the executor uses to validate kernel
outputs and the memory planner uses to size buffers.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import ShapeInferenceError, UnsupportedOpError
from repro.ir.graph import Graph
from repro.ir.node import Node
from repro.tensor.dtype import DType

Shape = tuple[int, ...]
ValueType = tuple[Shape, DType]
ShapeFn = Callable[[Node, list[ValueType], "InferenceContext"], list[ValueType]]

_SHAPE_FNS: dict[str, ShapeFn] = {}


class InferenceContext:
    """Gives shape functions access to constant values (e.g. Reshape targets)."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._constants: dict[str, np.ndarray] = dict(graph.initializers)
        for node in graph.nodes:
            if node.op_type == "Constant":
                self._constants[node.outputs[0]] = node.attrs.get_tensor("value")

    def constant_value(self, name: str) -> np.ndarray | None:
        """The compile-time value of ``name``, if it is a constant."""
        return self._constants.get(name)


def register_shape_fn(op_type: str) -> Callable[[ShapeFn], ShapeFn]:
    """Class of decorators registering the shape function for ``op_type``."""

    def decorator(fn: ShapeFn) -> ShapeFn:
        if op_type in _SHAPE_FNS:
            raise ValueError(f"duplicate shape function for {op_type!r}")
        _SHAPE_FNS[op_type] = fn
        return fn

    return decorator


def has_shape_fn(op_type: str) -> bool:
    return op_type in _SHAPE_FNS


def supported_ops() -> list[str]:
    """All op types with registered shape inference (= the runtime op set)."""
    return sorted(_SHAPE_FNS)


def infer_shapes(graph: Graph) -> dict[str, ValueType]:
    """Infer (shape, dtype) for every value in ``graph``.

    Raises:
        UnsupportedOpError: a node's op type has no registered shape function.
        ShapeInferenceError: operator constraints are violated.
    """
    ctx = InferenceContext(graph)
    values: dict[str, ValueType] = {}
    for info in graph.inputs:
        values[info.name] = (info.shape, info.dtype)
    for name, array in graph.initializers.items():
        values[name] = (tuple(array.shape), DType.from_numpy(array.dtype))
    for node in graph.toposort():
        fn = _SHAPE_FNS.get(node.op_type)
        if fn is None:
            raise UnsupportedOpError(
                f"no shape inference for op {node.op_type!r} (node {node.name!r})"
            )
        input_types = []
        for inp in node.inputs:
            if not inp:
                input_types.append(((), DType.FLOAT32))  # absent optional input
            elif inp in values:
                input_types.append(values[inp])
            else:
                raise ShapeInferenceError(
                    f"node {node.name!r} reads value {inp!r} with unknown type"
                )
        try:
            output_types = fn(node, input_types, ctx)
        except ShapeInferenceError:
            raise
        except Exception as exc:
            raise ShapeInferenceError(
                f"shape inference failed for node {node.name!r} "
                f"({node.op_type}): {exc}"
            ) from exc
        if len(output_types) != len(node.outputs):
            raise ShapeInferenceError(
                f"node {node.name!r}: shape fn returned {len(output_types)} "
                f"outputs, node declares {len(node.outputs)}"
            )
        for out, vtype in zip(node.outputs, output_types):
            values[out] = vtype
    return values


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _fail(node: Node, message: str) -> ShapeInferenceError:
    return ShapeInferenceError(f"node {node.name!r} ({node.op_type}): {message}")


def _require_rank(node: Node, shape: Shape, rank: int, what: str) -> None:
    if len(shape) != rank:
        raise _fail(node, f"{what} must have rank {rank}, got shape {shape}")


def _conv_dim(size: int, kernel: int, stride: int, pad: int, dilation: int) -> int:
    """Output size of one spatial dimension; -1 propagates."""
    if size == -1:
        return -1
    effective = dilation * (kernel - 1) + 1
    out = (size + pad - effective) // stride + 1
    if out <= 0:
        raise ShapeInferenceError(
            f"non-positive spatial output ({out}) for size={size} kernel={kernel} "
            f"stride={stride} pad={pad} dilation={dilation}"
        )
    return out


def resolve_conv_pads(
    node: Node, spatial: Sequence[int], kernel: Sequence[int],
    strides: Sequence[int], dilations: Sequence[int],
) -> tuple[int, ...]:
    """Resolve the ONNX ``auto_pad``/``pads`` attributes to explicit pads.

    Returns pads in ONNX order: ``(begin_0, ..., begin_n, end_0, ..., end_n)``.
    """
    rank = len(kernel)
    auto_pad = node.attrs.get_str("auto_pad", "NOTSET")
    if auto_pad in ("NOTSET", ""):
        pads = node.attrs.get_ints("pads", (0,) * (2 * rank))
        if len(pads) != 2 * rank:
            raise _fail(node, f"pads must have {2 * rank} entries, got {pads}")
        return pads
    if auto_pad == "VALID":
        return (0,) * (2 * rank)
    if auto_pad in ("SAME_UPPER", "SAME_LOWER"):
        begins: list[int] = []
        ends: list[int] = []
        for size, k, s, d in zip(spatial, kernel, strides, dilations):
            if size == -1:
                raise _fail(node, "SAME padding needs concrete spatial dims")
            out = math.ceil(size / s)
            total = max(0, (out - 1) * s + d * (k - 1) + 1 - size)
            small, big = total // 2, total - total // 2
            if auto_pad == "SAME_UPPER":
                begins.append(small)
                ends.append(big)
            else:
                begins.append(big)
                ends.append(small)
        return tuple(begins + ends)
    raise _fail(node, f"unknown auto_pad value {auto_pad!r}")


def broadcast_shapes(node: Node, a: Shape, b: Shape) -> Shape:
    """Numpy-style broadcasting with -1 (unknown) propagation."""
    rank = max(len(a), len(b))
    left = (1,) * (rank - len(a)) + a
    right = (1,) * (rank - len(b)) + b
    out: list[int] = []
    for dim_a, dim_b in zip(left, right):
        if dim_a == dim_b:
            out.append(dim_a)
        elif dim_a == 1:
            out.append(dim_b)
        elif dim_b == 1:
            out.append(dim_a)
        elif -1 in (dim_a, dim_b):
            out.append(-1)
        else:
            raise _fail(node, f"cannot broadcast shapes {a} and {b}")
    return tuple(out)


# ---------------------------------------------------------------------------
# shape functions
# ---------------------------------------------------------------------------


@register_shape_fn("Conv")
def _conv_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (x_shape, x_dtype), (w_shape, _w_dtype) = inputs[0], inputs[1]
    _require_rank(node, x_shape, 4, "Conv input")
    _require_rank(node, w_shape, 4, "Conv weight")
    batch, in_ch, height, width = x_shape
    out_ch, w_in_ch, kh, kw = w_shape
    kernel = node.attrs.get_ints("kernel_shape", (kh, kw))
    if tuple(kernel) != (kh, kw):
        raise _fail(node, f"kernel_shape {kernel} != weight spatial dims {(kh, kw)}")
    strides = node.attrs.get_ints("strides", (1, 1))
    dilations = node.attrs.get_ints("dilations", (1, 1))
    group = node.attrs.get_int("group", 1)
    if group < 1:
        raise _fail(node, f"group must be >= 1, got {group}")
    if in_ch != -1 and w_in_ch * group != in_ch:
        raise _fail(
            node,
            f"weight expects {w_in_ch * group} input channels "
            f"(C/group={w_in_ch} x group={group}), input has {in_ch}",
        )
    if out_ch % group != 0:
        raise _fail(node, f"output channels {out_ch} not divisible by group {group}")
    pads = resolve_conv_pads(node, (height, width), kernel, strides, dilations)
    out_h = _conv_dim(height, kernel[0], strides[0], pads[0] + pads[2], dilations[0])
    out_w = _conv_dim(width, kernel[1], strides[1], pads[1] + pads[3], dilations[1])
    if len(node.inputs) > 2 and node.inputs[2]:
        bias_shape = inputs[2][0]
        if bias_shape != (out_ch,):
            raise _fail(node, f"bias shape {bias_shape} != ({out_ch},)")
    return [((batch, out_ch, out_h, out_w), x_dtype)]


def _pool_shape(node: Node, inputs: list[ValueType]) -> list[ValueType]:
    (x_shape, x_dtype) = inputs[0]
    _require_rank(node, x_shape, 4, "pool input")
    batch, channels, height, width = x_shape
    kernel = node.attrs.get_ints("kernel_shape")
    strides = node.attrs.get_ints("strides", kernel)
    dilations = node.attrs.get_ints("dilations", (1, 1))
    pads = resolve_conv_pads(node, (height, width), kernel, strides, dilations)
    ceil_mode = node.attrs.get_int("ceil_mode", 0)

    def out_dim(size: int, k: int, s: int, pad: int, d: int) -> int:
        if size == -1:
            return -1
        effective = d * (k - 1) + 1
        raw = (size + pad - effective) / s + 1
        out = math.ceil(raw) if ceil_mode else math.floor(raw)
        if out <= 0:
            raise _fail(node, f"non-positive pooled size {out}")
        return int(out)

    out_h = out_dim(height, kernel[0], strides[0], pads[0] + pads[2], dilations[0])
    out_w = out_dim(width, kernel[1], strides[1], pads[1] + pads[3], dilations[1])
    return [((batch, channels, out_h, out_w), x_dtype)]


@register_shape_fn("MaxPool")
def _maxpool_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    return _pool_shape(node, inputs)


@register_shape_fn("AveragePool")
def _avgpool_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    return _pool_shape(node, inputs)


@register_shape_fn("GlobalAveragePool")
def _gap_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (x_shape, x_dtype) = inputs[0]
    _require_rank(node, x_shape, 4, "GlobalAveragePool input")
    batch, channels = x_shape[0], x_shape[1]
    return [((batch, channels, 1, 1), x_dtype)]


@register_shape_fn("Gemm")
def _gemm_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (a_shape, a_dtype), (b_shape, _b) = inputs[0], inputs[1]
    _require_rank(node, a_shape, 2, "Gemm A")
    _require_rank(node, b_shape, 2, "Gemm B")
    trans_a = node.attrs.get_int("transA", 0)
    trans_b = node.attrs.get_int("transB", 0)
    rows, inner_a = (a_shape[1], a_shape[0]) if trans_a else a_shape
    inner_b, cols = (b_shape[1], b_shape[0]) if trans_b else b_shape
    if -1 not in (inner_a, inner_b) and inner_a != inner_b:
        raise _fail(node, f"inner dims mismatch: {inner_a} vs {inner_b}")
    return [((rows, cols), a_dtype)]


@register_shape_fn("MatMul")
def _matmul_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (a_shape, a_dtype), (b_shape, _b) = inputs[0], inputs[1]
    if len(a_shape) < 2 or len(b_shape) < 2:
        raise _fail(node, f"MatMul needs rank >= 2, got {a_shape} x {b_shape}")
    if -1 not in (a_shape[-1], b_shape[-2]) and a_shape[-1] != b_shape[-2]:
        raise _fail(node, f"inner dims mismatch: {a_shape} x {b_shape}")
    batch = broadcast_shapes(node, a_shape[:-2], b_shape[:-2])
    return [((*batch, a_shape[-2], b_shape[-1]), a_dtype)]


@register_shape_fn("BatchNormalization")
def _bn_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (x_shape, x_dtype) = inputs[0]
    if len(x_shape) < 2:
        raise _fail(node, f"BatchNormalization needs rank >= 2, got {x_shape}")
    channels = x_shape[1]
    for index, what in ((1, "scale"), (2, "bias"), (3, "mean"), (4, "var")):
        shape = inputs[index][0]
        if channels != -1 and shape != (channels,):
            raise _fail(node, f"{what} shape {shape} != ({channels},)")
    return [(x_shape, x_dtype)]


def _unary_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    return [inputs[0]]


for _op in (
    "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Softmax", "Identity", "Erf",
    "Exp", "Sqrt", "Neg", "Abs", "HardSwish", "Elu", "LRN",
):
    register_shape_fn(_op)(_unary_shape)


@register_shape_fn("Clip")
def _clip_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    return [inputs[0]]


@register_shape_fn("Dropout")
def _dropout_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    # Inference-mode dropout is the identity; the optional mask output is
    # all-true with the same shape.
    out = [inputs[0]]
    if len(node.outputs) > 1:
        out.append((inputs[0][0], DType.BOOL))
    return out


def _binary_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (a_shape, a_dtype), (b_shape, _b) = inputs[0], inputs[1]
    return [(broadcast_shapes(node, a_shape, b_shape), a_dtype)]


for _op in ("Add", "Sub", "Mul", "Div", "Pow", "Max", "Min"):
    register_shape_fn(_op)(_binary_shape)


@register_shape_fn("Concat")
def _concat_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    axis = node.attrs.get_int("axis")
    first_shape, dtype = inputs[0]
    rank = len(first_shape)
    if not -rank <= axis < rank:
        raise _fail(node, f"axis {axis} out of range for rank {rank}")
    axis %= rank
    total = 0
    for shape, _dt in inputs:
        if len(shape) != rank:
            raise _fail(node, f"rank mismatch in Concat: {first_shape} vs {shape}")
        for dim in range(rank):
            if dim == axis:
                continue
            if -1 not in (shape[dim], first_shape[dim]) and shape[dim] != first_shape[dim]:
                raise _fail(node, f"non-axis dims differ: {first_shape} vs {shape}")
        total = -1 if (total == -1 or shape[axis] == -1) else total + shape[axis]
    out = list(first_shape)
    out[axis] = total
    return [(tuple(out), dtype)]


@register_shape_fn("Flatten")
def _flatten_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    axis = node.attrs.get_int("axis", 1)
    rank = len(shape)
    if not -rank <= axis <= rank:
        raise _fail(node, f"axis {axis} out of range for rank {rank}")
    axis %= rank if rank else 1

    def prod(dims: Shape) -> int:
        if -1 in dims:
            return -1
        return int(np.prod(dims, dtype=np.int64)) if dims else 1

    return [((prod(shape[:axis]), prod(shape[axis:])), dtype)]


@register_shape_fn("Reshape")
def _reshape_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    target = ctx.constant_value(node.inputs[1]) if len(node.inputs) > 1 else None
    if target is None:
        target_attr = node.attrs.get_ints("shape", None) if "shape" in node.attrs else None
        if target_attr is None:
            raise _fail(node, "Reshape target shape is not a compile-time constant")
        target = np.asarray(target_attr, dtype=np.int64)
    target_list = [int(dim) for dim in np.asarray(target).reshape(-1)]
    allowzero = node.attrs.get_int("allowzero", 0)
    out: list[int] = []
    for index, dim in enumerate(target_list):
        if dim == 0 and not allowzero:
            if index >= len(shape):
                raise _fail(node, f"0-dim at index {index} exceeds input rank")
            out.append(shape[index])
        else:
            out.append(dim)
    if out.count(-1) > 1:
        raise _fail(node, f"more than one -1 in reshape target {target_list}")
    if -1 in out and -1 not in shape:
        known = int(np.prod([dim for dim in out if dim != -1], dtype=np.int64))
        total = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if known == 0 or total % known != 0:
            raise _fail(node, f"cannot reshape {shape} to {out}")
        out[out.index(-1)] = total // known
    if -1 not in shape and -1 not in out:
        if int(np.prod(shape, dtype=np.int64) if shape else 1) != int(
            np.prod(out, dtype=np.int64) if out else 1
        ):
            raise _fail(node, f"element count mismatch reshaping {shape} to {tuple(out)}")
    return [(tuple(out), dtype)]


@register_shape_fn("Transpose")
def _transpose_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    rank = len(shape)
    perm = node.attrs.get_ints("perm", tuple(reversed(range(rank))))
    if sorted(perm) != list(range(rank)):
        raise _fail(node, f"perm {perm} is not a permutation of rank {rank}")
    return [(tuple(shape[axis] for axis in perm), dtype)]


@register_shape_fn("Pad")
def _pad_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    rank = len(shape)
    if len(node.inputs) > 1 and node.inputs[1]:
        pads_value = ctx.constant_value(node.inputs[1])
        if pads_value is None:
            raise _fail(node, "Pad amounts must be compile-time constants")
        pads = [int(p) for p in np.asarray(pads_value).reshape(-1)]
    else:
        pads = list(node.attrs.get_ints("pads"))
    if len(pads) != 2 * rank:
        raise _fail(node, f"pads must have {2 * rank} entries, got {pads}")
    out = []
    for axis in range(rank):
        dim = shape[axis]
        out.append(-1 if dim == -1 else dim + pads[axis] + pads[axis + rank])
    return [(tuple(out), dtype)]


@register_shape_fn("Squeeze")
def _squeeze_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    rank = len(shape)
    if len(node.inputs) > 1 and node.inputs[1]:
        axes_value = ctx.constant_value(node.inputs[1])
        if axes_value is None:
            raise _fail(node, "Squeeze axes must be compile-time constants")
        axes = [int(a) % rank for a in np.asarray(axes_value).reshape(-1)]
    elif "axes" in node.attrs:
        axes = [int(a) % rank for a in node.attrs.get_ints("axes")]
    else:
        axes = [axis for axis, dim in enumerate(shape) if dim == 1]
    for axis in axes:
        if shape[axis] not in (1, -1):
            raise _fail(node, f"cannot squeeze axis {axis} of size {shape[axis]}")
    return [(tuple(dim for axis, dim in enumerate(shape) if axis not in set(axes)), dtype)]


@register_shape_fn("Unsqueeze")
def _unsqueeze_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    if len(node.inputs) > 1 and node.inputs[1]:
        axes_value = ctx.constant_value(node.inputs[1])
        if axes_value is None:
            raise _fail(node, "Unsqueeze axes must be compile-time constants")
        axes = [int(a) for a in np.asarray(axes_value).reshape(-1)]
    else:
        axes = list(node.attrs.get_ints("axes"))
    out_rank = len(shape) + len(axes)
    axes = sorted(axis % out_rank for axis in axes)
    out: list[int] = []
    source = iter(shape)
    for position in range(out_rank):
        out.append(1 if position in axes else next(source))
    return [(tuple(out), dtype)]


@register_shape_fn("ReduceMean")
def _reducemean_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    rank = len(shape)
    axes = node.attrs.get_ints("axes", tuple(range(rank)))
    axes = tuple(sorted(axis % rank for axis in axes))
    keepdims = node.attrs.get_int("keepdims", 1)
    if keepdims:
        out = tuple(1 if axis in axes else dim for axis, dim in enumerate(shape))
    else:
        out = tuple(dim for axis, dim in enumerate(shape) if axis not in axes)
    return [(out, dtype)]


@register_shape_fn("Constant")
def _constant_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    value = node.attrs.get_tensor("value")
    return [(tuple(value.shape), DType.from_numpy(value.dtype))]


@register_shape_fn("Shape")
def _shape_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, _dtype) = inputs[0]
    return [((len(shape),), DType.INT64)]


def _constant_ints(ctx: InferenceContext, node: Node, index: int,
                   what: str) -> list[int] | None:
    """Read an optional int-tensor input that must be compile-time constant."""
    if len(node.inputs) <= index or not node.inputs[index]:
        return None
    value = ctx.constant_value(node.inputs[index])
    if value is None:
        raise _fail(node, f"{what} must be a compile-time constant")
    return [int(v) for v in np.asarray(value).reshape(-1)]


@register_shape_fn("Slice")
def _slice_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    rank = len(shape)
    starts = _constant_ints(ctx, node, 1, "Slice starts")
    ends = _constant_ints(ctx, node, 2, "Slice ends")
    if starts is None or ends is None:
        starts = list(node.attrs.get_ints("starts"))
        ends = list(node.attrs.get_ints("ends"))
    axes = _constant_ints(ctx, node, 3, "Slice axes")
    if axes is None:
        axes = list(node.attrs.get_ints("axes", tuple(range(len(starts)))))
    steps = _constant_ints(ctx, node, 4, "Slice steps")
    if steps is None:
        steps = list(node.attrs.get_ints("steps", (1,) * len(starts)))
    if not (len(starts) == len(ends) == len(axes) == len(steps)):
        raise _fail(node, "starts/ends/axes/steps length mismatch")
    out = list(shape)
    for start, end, axis, step in zip(starts, ends, axes, steps):
        axis %= rank
        size = shape[axis]
        if size == -1:
            continue
        if step == 0:
            raise _fail(node, "Slice step of 0")
        # ONNX clamping semantics (same as Python slicing).
        out[axis] = len(range(*slice(start, end, step).indices(size)))
    return [(tuple(out), dtype)]


@register_shape_fn("Gather")
def _gather_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (data_shape, dtype) = inputs[0]
    (indices_shape, indices_dtype) = inputs[1]
    if not indices_dtype.is_integer:
        raise _fail(node, f"Gather indices must be integers, got {indices_dtype}")
    rank = len(data_shape)
    axis = node.attrs.get_int("axis", 0) % max(rank, 1)
    out = data_shape[:axis] + indices_shape + data_shape[axis + 1:]
    return [(out, dtype)]


@register_shape_fn("Split")
def _split_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    rank = len(shape)
    axis = node.attrs.get_int("axis", 0) % max(rank, 1)
    total = shape[axis]
    pieces = _constant_ints(ctx, node, 1, "Split sizes")
    if pieces is None and "split" in node.attrs:
        pieces = list(node.attrs.get_ints("split"))
    count = len(node.outputs)
    if pieces is None:
        if total == -1:
            raise _fail(node, "cannot evenly split a symbolic dimension")
        if total % count:
            raise _fail(node, f"cannot split {total} into {count} equal parts")
        pieces = [total // count] * count
    if len(pieces) != count:
        raise _fail(node, f"{len(pieces)} split sizes for {count} outputs")
    if total != -1 and sum(pieces) != total:
        raise _fail(node, f"split sizes {pieces} do not sum to {total}")
    outputs = []
    for piece in pieces:
        out = list(shape)
        out[axis] = piece
        outputs.append((tuple(out), dtype))
    return outputs


@register_shape_fn("Resize")
def _resize_shape(node: Node, inputs: list[ValueType], ctx: InferenceContext) -> list[ValueType]:
    (shape, dtype) = inputs[0]
    rank = len(shape)
    sizes = _constant_ints(ctx, node, 3, "Resize sizes")
    if sizes is not None:
        if len(sizes) != rank:
            raise _fail(node, f"Resize sizes rank {len(sizes)} != {rank}")
        return [(tuple(sizes), dtype)]
    if len(node.inputs) > 2 and node.inputs[2]:
        scales_value = ctx.constant_value(node.inputs[2])
        if scales_value is None:
            raise _fail(node, "Resize scales must be compile-time constants")
        scales = [float(s) for s in np.asarray(scales_value).reshape(-1)]
    else:
        scales = [float(s) for s in node.attrs.get_floats("scales")]
    if len(scales) != rank:
        raise _fail(node, f"Resize scales rank {len(scales)} != {rank}")
    out = tuple(
        -1 if dim == -1 else int(np.floor(dim * scale))
        for dim, scale in zip(shape, scales))
    return [(out, dtype)]
