"""The computation graph IR.

A :class:`Graph` is a flat list of :class:`~repro.ir.node.Node`s plus typed
graph inputs/outputs and constant initializers (the weights). Execution
order is derived — nodes may be stored in any order; :meth:`Graph.toposort`
produces a valid schedule or raises :class:`~repro.errors.GraphError` on
cycles.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GraphError
from repro.ir.node import Node
from repro.tensor.dtype import DType


@dataclasses.dataclass(frozen=True)
class ValueInfo:
    """Static type information for a graph input or output.

    ``shape`` entries may be ``-1`` for symbolic (unknown) dimensions; the
    batch dimension of imported models is commonly symbolic.
    """

    name: str
    shape: tuple[int, ...]
    dtype: DType = DType.FLOAT32

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ValueInfo needs a non-empty name")
        object.__setattr__(self, "shape", tuple(int(dim) for dim in self.shape))

    def with_shape(self, shape: Sequence[int]) -> "ValueInfo":
        return ValueInfo(self.name, tuple(shape), self.dtype)


class Graph:
    """A dataflow graph over named values.

    Invariants enforced by :meth:`validate`:
      * every value is produced exactly once (single static assignment);
      * every node input is a graph input, an initializer, or some node's
        output;
      * every graph output is produced;
      * the node dependency relation is acyclic.
    """

    def __init__(
        self,
        name: str = "graph",
        inputs: Sequence[ValueInfo] = (),
        outputs: Sequence[ValueInfo] = (),
        nodes: Sequence[Node] = (),
        initializers: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        self.name = name
        self.inputs: list[ValueInfo] = list(inputs)
        self.outputs: list[ValueInfo] = list(outputs)
        self.nodes: list[Node] = list(nodes)
        self.initializers: dict[str, np.ndarray] = dict(initializers or {})

    # -- lookups ---------------------------------------------------------------

    @property
    def input_names(self) -> list[str]:
        return [info.name for info in self.inputs]

    @property
    def output_names(self) -> list[str]:
        return [info.name for info in self.outputs]

    def producers(self) -> dict[str, Node]:
        """Map from value name to the node that produces it."""
        table: dict[str, Node] = {}
        for node in self.nodes:
            for out in node.outputs:
                if out in table:
                    raise GraphError(
                        f"value {out!r} produced by both {table[out].name!r} "
                        f"and {node.name!r}"
                    )
                table[out] = node
        return table

    def consumers(self) -> dict[str, list[Node]]:
        """Map from value name to the nodes that consume it."""
        table: dict[str, list[Node]] = {}
        for node in self.nodes:
            for inp in node.present_inputs:
                table.setdefault(inp, []).append(node)
        return table

    def find_node(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise GraphError(f"no node named {name!r} in graph {self.name!r}")

    def nodes_by_type(self, op_type: str) -> list[Node]:
        return [node for node in self.nodes if node.op_type == op_type]

    # -- validation & scheduling -------------------------------------------------

    def available_values(self) -> set[str]:
        """Names bound before any node runs: graph inputs + initializers."""
        return set(self.input_names) | set(self.initializers)

    def validate(self) -> None:
        """Check all graph invariants; raise :class:`GraphError` on violation."""
        produced = self.available_values()
        overlap = set(self.input_names) & set(self.initializers)
        if overlap:
            raise GraphError(f"names are both inputs and initializers: {sorted(overlap)}")
        for node in self.nodes:
            for out in node.outputs:
                if out in produced:
                    raise GraphError(f"value {out!r} is defined more than once")
                produced.add(out)
        for node in self.nodes:
            for inp in node.present_inputs:
                if inp not in produced:
                    raise GraphError(
                        f"node {node.name!r} reads undefined value {inp!r}"
                    )
        for info in self.outputs:
            if info.name not in produced:
                raise GraphError(f"graph output {info.name!r} is never produced")
        self.toposort()  # raises on cycles

    def toposort(self) -> list[Node]:
        """Return nodes in a dependency-respecting order (Kahn's algorithm)."""
        producers = self.producers()
        indegree: dict[int, int] = {}
        dependents: dict[int, list[Node]] = {}
        for node in self.nodes:
            count = 0
            for inp in node.present_inputs:
                producer = producers.get(inp)
                if producer is not None and producer is not node:
                    count += 1
                    dependents.setdefault(id(producer), []).append(node)
            indegree[id(node)] = count
        ready = [node for node in self.nodes if indegree[id(node)] == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for dep in dependents.get(id(node), ()):
                indegree[id(dep)] -= 1
                if indegree[id(dep)] == 0:
                    ready.append(dep)
        if len(order) != len(self.nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order

    # -- mutation (used by builder and passes) ------------------------------------

    def add_node(self, node: Node) -> Node:
        self.nodes.append(node)
        return node

    def remove_nodes(self, dead: Iterable[Node]) -> None:
        doomed = {id(node) for node in dead}
        self.nodes = [node for node in self.nodes if id(node) not in doomed]

    def add_initializer(self, name: str, value: np.ndarray) -> None:
        if name in self.initializers:
            raise GraphError(f"initializer {name!r} already exists")
        self.initializers[name] = value

    def prune_initializers(self) -> int:
        """Drop initializers no node or graph output references; return count."""
        used: set[str] = set(self.output_names)
        for node in self.nodes:
            used.update(node.present_inputs)
        dead = [name for name in self.initializers if name not in used]
        for name in dead:
            del self.initializers[name]
        return len(dead)

    def rename_value(self, old: str, new: str) -> None:
        """Rename a value everywhere it appears (producer, consumers, IO)."""
        if old == new:
            return
        taken = self.available_values() | {
            out for node in self.nodes for out in node.outputs}
        if new in taken:
            raise GraphError(f"cannot rename {old!r}: {new!r} already exists")
        for node in self.nodes:
            node.inputs = [new if name == old else name for name in node.inputs]
            node.outputs = [new if name == old else name for name in node.outputs]
        self.inputs = [
            ValueInfo(new, info.shape, info.dtype) if info.name == old else info
            for info in self.inputs
        ]
        self.outputs = [
            ValueInfo(new, info.shape, info.dtype) if info.name == old else info
            for info in self.outputs
        ]
        if old in self.initializers:
            self.initializers[new] = self.initializers.pop(old)

    def copy(self) -> "Graph":
        """Deep-ish copy: nodes and containers are fresh, weight arrays shared."""
        return Graph(
            name=self.name,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            nodes=[node.copy() for node in self.nodes],
            initializers=dict(self.initializers),
        )

    # -- statistics ---------------------------------------------------------------

    def num_parameters(self) -> int:
        """Total scalar count across all initializers."""
        return sum(int(array.size) for array in self.initializers.values())

    def op_histogram(self) -> dict[str, int]:
        """Count of nodes per op type, sorted descending."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.op_type] = counts.get(node.op_type, 0) + 1
        return dict(sorted(counts.items(), key=lambda item: (-item[1], item[0])))

    def __repr__(self) -> str:
        return (
            f"Graph({self.name!r}, nodes={len(self.nodes)}, "
            f"inputs={self.input_names}, outputs={self.output_names}, "
            f"params={self.num_parameters()})"
        )
