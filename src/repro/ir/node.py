"""IR node: one operator application inside a graph."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.ir.attributes import Attributes


class Node:
    """A single operator invocation.

    Inputs and outputs are *value names* — strings resolved against the
    enclosing graph's inputs, initializers, and other nodes' outputs. An
    empty-string input means "optional input not provided" (ONNX convention).
    """

    __slots__ = ("op_type", "name", "inputs", "outputs", "attrs")

    def __init__(
        self,
        op_type: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        attrs: Mapping[str, object] | Attributes | None = None,
        name: str = "",
    ) -> None:
        if not op_type:
            raise ValueError("op_type must be non-empty")
        if not outputs:
            raise ValueError(f"node {name or op_type!r} must have at least one output")
        self.op_type = op_type
        self.name = name or f"{op_type}_{outputs[0]}"
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        if isinstance(attrs, Attributes):
            self.attrs = attrs
        else:
            self.attrs = Attributes(attrs)

    @property
    def present_inputs(self) -> list[str]:
        """Input names with the optional-input placeholders ('') removed."""
        return [name for name in self.inputs if name]

    def replace_input(self, old: str, new: str) -> None:
        """Rewrite every occurrence of input value ``old`` to ``new``."""
        self.inputs = [new if name == old else name for name in self.inputs]

    def copy(self) -> "Node":
        return Node(
            self.op_type,
            list(self.inputs),
            list(self.outputs),
            Attributes(self.attrs.as_dict()),
            name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"Node({self.op_type!r}, name={self.name!r}, "
            f"inputs={self.inputs}, outputs={self.outputs})"
        )
