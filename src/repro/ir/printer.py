"""Human-readable text rendering of IR graphs.

Used by the CLI ``inspect`` command and by test failure messages.
"""

from __future__ import annotations

from repro.ir.graph import Graph
from repro.ir.shape_inference import infer_shapes


def format_shape(shape: tuple[int, ...]) -> str:
    return "x".join("?" if dim == -1 else str(dim) for dim in shape) or "scalar"


def print_graph(graph: Graph, with_shapes: bool = True) -> str:
    """Render ``graph`` as an indented text listing."""
    lines = [f"graph {graph.name}"]
    shapes: dict[str, str] = {}
    if with_shapes:
        try:
            values = infer_shapes(graph)
            shapes = {name: format_shape(shape) for name, (shape, _dt) in values.items()}
        except Exception:  # malformed graphs still print, just without shapes
            shapes = {}

    def annotate(value: str) -> str:
        if value in shapes:
            return f"{value}:{shapes[value]}"
        return value or "_"

    for info in graph.inputs:
        lines.append(f"  input  {info.name}: {format_shape(info.shape)} {info.dtype.value}")
    lines.append(f"  initializers: {len(graph.initializers)} "
                 f"({graph.num_parameters():,} parameters)")
    for node in graph.toposort():
        attrs = node.attrs.as_dict()
        attr_text = ""
        if attrs:
            parts = []
            for key in sorted(attrs):
                value = attrs[key]
                rendered = f"<tensor {getattr(value, 'shape', '?')}>" if hasattr(
                    value, "shape") else repr(value)
                parts.append(f"{key}={rendered}")
            attr_text = " {" + ", ".join(parts) + "}"
        ins = ", ".join(annotate(inp) for inp in node.inputs)
        outs = ", ".join(annotate(out) for out in node.outputs)
        lines.append(f"  {outs} = {node.op_type}({ins}){attr_text}")
    for info in graph.outputs:
        lines.append(f"  output {info.name}")
    return "\n".join(lines)


def summarize(graph: Graph) -> str:
    """One-paragraph summary: op histogram and parameter count."""
    histogram = ", ".join(
        f"{op}x{count}" for op, count in graph.op_histogram().items())
    return (
        f"{graph.name}: {len(graph.nodes)} nodes "
        f"({histogram}); {graph.num_parameters():,} parameters"
    )
