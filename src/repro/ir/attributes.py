"""Typed attribute container for IR nodes.

ONNX attributes are loosely typed (int, float, string, int-list, ...);
``Attributes`` normalises them on insertion and gives kernels typed getters
that raise a framework error — rather than a ``KeyError`` deep inside a
kernel — when a required attribute is missing or malformed.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import AttributeError_

AttrValue = int | float | str | tuple[int, ...] | tuple[float, ...] | np.ndarray


def _normalize(name: str, value: object) -> AttrValue:
    """Coerce a raw attribute value into one of the supported attr types."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float, str, np.ndarray)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        items = list(value)
        if all(isinstance(item, (int, np.integer)) for item in items):
            return tuple(int(item) for item in items)
        if all(isinstance(item, (int, float, np.integer, np.floating)) for item in items):
            return tuple(float(item) for item in items)
        raise AttributeError_(f"attribute {name!r}: mixed-type sequence {value!r}")
    raise AttributeError_(f"attribute {name!r}: unsupported type {type(value).__name__}")


class Attributes:
    """An immutable-ish mapping of attribute name to typed value."""

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, object] | None = None) -> None:
        self._values: dict[str, AttrValue] = {}
        if values:
            for name, value in values.items():
                self._values[name] = _normalize(name, value)

    # -- mapping protocol ----------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def keys(self) -> Sequence[str]:
        return tuple(self._values)

    def as_dict(self) -> dict[str, AttrValue]:
        return dict(self._values)

    # -- typed getters --------------------------------------------------------

    def get_int(self, name: str, default: int | None = None) -> int:
        return self._get(name, int, default)

    def get_float(self, name: str, default: float | None = None) -> float:
        value = self._values.get(name)
        if value is None:
            return self._require_default(name, default, "float")
        if isinstance(value, (int, float)):
            return float(value)
        raise AttributeError_(f"attribute {name!r}: expected float, got {value!r}")

    def get_str(self, name: str, default: str | None = None) -> str:
        return self._get(name, str, default)

    def get_ints(self, name: str, default: Sequence[int] | None = None) -> tuple[int, ...]:
        value = self._values.get(name)
        if value is None:
            if default is None:
                raise AttributeError_(f"missing required attribute {name!r} (ints)")
            return tuple(int(item) for item in default)
        if isinstance(value, tuple) and all(isinstance(item, int) for item in value):
            return value  # type: ignore[return-value]
        if isinstance(value, int):  # scalar promoted to 1-tuple
            return (value,)
        raise AttributeError_(f"attribute {name!r}: expected ints, got {value!r}")

    def get_floats(
        self, name: str, default: Sequence[float] | None = None
    ) -> tuple[float, ...]:
        value = self._values.get(name)
        if value is None:
            if default is None:
                raise AttributeError_(f"missing required attribute {name!r} (floats)")
            return tuple(float(item) for item in default)
        if isinstance(value, tuple):
            return tuple(float(item) for item in value)
        if isinstance(value, (int, float)):
            return (float(value),)
        raise AttributeError_(f"attribute {name!r}: expected floats, got {value!r}")

    def get_tensor(self, name: str, default: np.ndarray | None = None) -> np.ndarray:
        value = self._values.get(name)
        if value is None:
            if default is None:
                raise AttributeError_(f"missing required attribute {name!r} (tensor)")
            return default
        if isinstance(value, np.ndarray):
            return value
        raise AttributeError_(f"attribute {name!r}: expected tensor, got {value!r}")

    # -- mutation (used by graph passes) --------------------------------------

    def set(self, name: str, value: object) -> None:
        self._values[name] = _normalize(name, value)

    def remove(self, name: str) -> None:
        self._values.pop(name, None)

    def updated(self, **changes: object) -> "Attributes":
        """Return a copy with the given attributes set."""
        merged = dict(self._values)
        for name, value in changes.items():
            merged[name] = _normalize(name, value)
        out = Attributes()
        out._values = merged
        return out

    # -- internals -------------------------------------------------------------

    def _get(self, name: str, kind: type, default: object) -> object:
        value = self._values.get(name)
        if value is None:
            return self._require_default(name, default, kind.__name__)
        if isinstance(value, kind):
            return value
        raise AttributeError_(
            f"attribute {name!r}: expected {kind.__name__}, got {type(value).__name__}"
        )

    @staticmethod
    def _require_default(name: str, default: object, kind: str) -> object:
        if default is None:
            raise AttributeError_(f"missing required attribute {name!r} ({kind})")
        return default

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value!r}" for key, value in sorted(self._values.items()))
        return f"Attributes({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attributes):
            return NotImplemented
        if self._values.keys() != other._values.keys():
            return False
        for key, mine in self._values.items():
            theirs = other._values[key]
            if isinstance(mine, np.ndarray) or isinstance(theirs, np.ndarray):
                if not (
                    isinstance(mine, np.ndarray)
                    and isinstance(theirs, np.ndarray)
                    and np.array_equal(mine, theirs)
                ):
                    return False
            elif mine != theirs:
                return False
        return True

    __hash__ = None  # type: ignore[assignment]
