"""Tensor layer: the `Tensor` type, dtypes, and layout utilities."""

from repro.tensor.dtype import DType
from repro.tensor.layout import (
    convert_activation,
    convert_weight,
    nchw_to_nhwc,
    nhwc_to_nchw,
)
from repro.tensor.tensor import Tensor

__all__ = [
    "DType",
    "Tensor",
    "convert_activation",
    "convert_weight",
    "nchw_to_nhwc",
    "nhwc_to_nchw",
]
