"""Tensor layout utilities.

The framework's canonical activation layout is NCHW (as in ONNX and the
paper's C++ implementation). Interop helpers convert to/from NHWC, and
weight layouts OIHW <-> HWIO, for users importing data from NHWC-native
frameworks.
"""

from __future__ import annotations

import numpy as np

_LAYOUTS = ("NCHW", "NHWC")
_WEIGHT_LAYOUTS = ("OIHW", "HWIO")


def _axes(src: str, dst: str) -> tuple[int, ...]:
    return tuple(src.index(axis) for axis in dst)


def convert_activation(data: np.ndarray, src: str, dst: str) -> np.ndarray:
    """Convert a rank-4 activation tensor between NCHW and NHWC.

    Returns the input unchanged (no copy) when ``src == dst``.
    """
    if src not in _LAYOUTS or dst not in _LAYOUTS:
        raise ValueError(f"unknown activation layout: {src!r} -> {dst!r}")
    if data.ndim != 4:
        raise ValueError(f"activation layout conversion needs rank 4, got {data.ndim}")
    if src == dst:
        return data
    return np.ascontiguousarray(data.transpose(_axes(src, dst)))


def convert_weight(data: np.ndarray, src: str, dst: str) -> np.ndarray:
    """Convert a rank-4 convolution weight between OIHW and HWIO."""
    if src not in _WEIGHT_LAYOUTS or dst not in _WEIGHT_LAYOUTS:
        raise ValueError(f"unknown weight layout: {src!r} -> {dst!r}")
    if data.ndim != 4:
        raise ValueError(f"weight layout conversion needs rank 4, got {data.ndim}")
    if src == dst:
        return data
    return np.ascontiguousarray(data.transpose(_axes(src, dst)))


def nchw_to_nhwc(data: np.ndarray) -> np.ndarray:
    """Shorthand for :func:`convert_activation` NCHW -> NHWC."""
    return convert_activation(data, "NCHW", "NHWC")


def nhwc_to_nchw(data: np.ndarray) -> np.ndarray:
    """Shorthand for :func:`convert_activation` NHWC -> NCHW."""
    return convert_activation(data, "NHWC", "NCHW")
