"""Data types supported by the framework.

A small closed set, mirroring what an edge-inference runtime actually ships:
float32 for standard inference, float64 for reference checking, int8/int32
for the quantized path, int64 for shape-carrying tensors, bool for masks.

Each :class:`DType` knows its numpy equivalent and its ONNX ``TensorProto``
data-type code, so the ONNX reader/writer and the kernels share one enum.
"""

from __future__ import annotations

import enum

import numpy as np


class DType(enum.Enum):
    """Framework data type, with numpy and ONNX mappings."""

    FLOAT32 = "float32"
    FLOAT64 = "float64"
    FLOAT16 = "float16"
    INT8 = "int8"
    UINT8 = "uint8"
    INT32 = "int32"
    INT64 = "int64"
    BOOL = "bool"

    @property
    def np(self) -> np.dtype:
        """The equivalent numpy dtype."""
        return np.dtype(self.value)

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.np.itemsize

    @property
    def is_float(self) -> bool:
        return self in (DType.FLOAT32, DType.FLOAT64, DType.FLOAT16)

    @property
    def is_integer(self) -> bool:
        return self in (DType.INT8, DType.UINT8, DType.INT32, DType.INT64)

    @property
    def onnx_code(self) -> int:
        """ONNX ``TensorProto.DataType`` enum value."""
        return _TO_ONNX[self]

    @classmethod
    def from_numpy(cls, dtype: np.dtype | type) -> "DType":
        """Map a numpy dtype to a framework DType.

        Raises:
            ValueError: for dtypes outside the supported set.
        """
        name = np.dtype(dtype).name
        try:
            return cls(name)
        except ValueError:
            raise ValueError(f"unsupported numpy dtype: {name!r}") from None

    @classmethod
    def from_onnx(cls, code: int) -> "DType":
        """Map an ONNX ``TensorProto.DataType`` code to a framework DType.

        Raises:
            ValueError: for codes outside the supported set.
        """
        try:
            return _FROM_ONNX[code]
        except KeyError:
            raise ValueError(f"unsupported ONNX data type code: {code}") from None


# ONNX TensorProto.DataType values (onnx.proto, stable across opsets).
_TO_ONNX: dict[DType, int] = {
    DType.FLOAT32: 1,
    DType.UINT8: 2,
    DType.INT8: 3,
    DType.INT32: 6,
    DType.INT64: 7,
    DType.BOOL: 9,
    DType.FLOAT16: 10,
    DType.FLOAT64: 11,
}
_FROM_ONNX: dict[int, DType] = {code: dt for dt, code in _TO_ONNX.items()}
