"""The ``Tensor`` type used at the public API boundary.

Internally kernels operate on raw ``numpy.ndarray``s for speed; ``Tensor``
wraps one with a name and a framework :class:`~repro.tensor.dtype.DType`, and
is what users pass to / receive from an ``InferenceSession``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.dtype import DType


class Tensor:
    """A named, typed, numpy-backed tensor.

    Construction normalises the backing array to the requested dtype and
    keeps it C-contiguous, which is what every kernel in the framework
    assumes.
    """

    __slots__ = ("_data", "_name")

    def __init__(
        self,
        data: np.ndarray | Sequence[float] | float,
        dtype: DType | None = None,
        name: str = "",
    ) -> None:
        array = np.asarray(data)
        if dtype is not None:
            array = array.astype(dtype.np, copy=False)
        else:
            DType.from_numpy(array.dtype)  # validate it is a supported dtype
        self._data = np.ascontiguousarray(array)
        self._name = name

    # -- properties ---------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The backing numpy array (shared, not copied)."""
        return self._data

    @property
    def name(self) -> str:
        return self._name

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def rank(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return int(self._data.size)

    @property
    def dtype(self) -> DType:
        return DType.from_numpy(self._data.dtype)

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    # -- conversions --------------------------------------------------------

    def numpy(self) -> np.ndarray:
        """Return the backing array (alias of :attr:`data`)."""
        return self._data

    def astype(self, dtype: DType) -> "Tensor":
        """Return a copy converted to ``dtype``."""
        return Tensor(self._data.astype(dtype.np), name=self._name)

    def with_name(self, name: str) -> "Tensor":
        """Return a view of this tensor under a different name."""
        out = Tensor.__new__(Tensor)
        out._data = self._data
        out._name = name
        return out

    def copy(self) -> "Tensor":
        return Tensor(self._data.copy(), name=self._name)

    # -- factories ----------------------------------------------------------

    @classmethod
    def zeros(
        cls, shape: Sequence[int], dtype: DType = DType.FLOAT32, name: str = ""
    ) -> "Tensor":
        return cls(np.zeros(tuple(shape), dtype=dtype.np), name=name)

    @classmethod
    def ones(
        cls, shape: Sequence[int], dtype: DType = DType.FLOAT32, name: str = ""
    ) -> "Tensor":
        return cls(np.ones(tuple(shape), dtype=dtype.np), name=name)

    @classmethod
    def random(
        cls,
        shape: Sequence[int],
        dtype: DType = DType.FLOAT32,
        name: str = "",
        seed: int = 0,
        scale: float = 1.0,
    ) -> "Tensor":
        """A reproducible standard-normal tensor (for test inputs/weights)."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(tuple(shape)) * scale
        return cls(data.astype(dtype.np), name=name)

    # -- comparisons --------------------------------------------------------

    def allclose(self, other: "Tensor", rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        """Elementwise closeness against another tensor of the same shape."""
        return self.shape == other.shape and bool(
            np.allclose(self._data, other._data, rtol=rtol, atol=atol)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tensor):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.dtype == other.dtype
            and bool(np.array_equal(self._data, other._data))
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"Tensor({label} shape={self.shape}, dtype={self.dtype.value})"
