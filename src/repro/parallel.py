"""Chunked parallel-for: the framework's OpenMP stand-in.

The paper's C++ kernels use OpenMP ``parallel for`` over output channels or
rows; here a shared thread pool runs chunk workers. With ``threads=1`` (the
paper's evaluation setting) the loop body runs inline with zero overhead,
so single-thread measurements are not polluted by pool dispatch.

numpy releases the GIL inside BLAS and many ufuncs, so multi-thread runs do
achieve real speedups for the GEMM-heavy kernels.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0


def _shared_pool(threads: int) -> ThreadPoolExecutor:
    """A process-wide pool, grown on demand (never shrunk)."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < threads:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(max_workers=threads,
                                       thread_name_prefix="orpheus-worker")
            _pool_size = threads
        return _pool


def chunk_ranges(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``chunks`` contiguous spans."""
    if total <= 0:
        return []
    chunks = max(1, min(chunks, total))
    base, extra = divmod(total, chunks)
    spans = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def parallel_for(total: int, body: Callable[[int, int], None], threads: int = 1) -> None:
    """Run ``body(start, stop)`` over a partition of ``range(total)``.

    With ``threads == 1`` the body is invoked once, inline. Exceptions from
    workers propagate to the caller.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if threads == 1 or total <= 1:
        if total > 0:
            body(0, total)
        return
    spans = chunk_ranges(total, threads)
    pool = _shared_pool(threads)
    futures = [pool.submit(body, start, stop) for start, stop in spans]
    for future in futures:
        future.result()  # re-raises worker exceptions
