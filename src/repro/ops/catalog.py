"""The schema catalog: one :class:`OpSchema` per supported operator.

Attribute names, kinds, and defaults follow ONNX opset 13 (plus the
quantization ops and the framework-internal ``activation`` attribute).
"""

from __future__ import annotations

from repro.ops.registry import AttrKind, AttrSpec, OpSchema, register_op

_I = AttrKind.INT
_F = AttrKind.FLOAT
_S = AttrKind.STRING
_IS = AttrKind.INTS
_T = AttrKind.TENSOR


def _conv_attrs() -> dict[str, AttrSpec]:
    return {
        "kernel_shape": AttrSpec(_IS),
        "strides": AttrSpec(_IS, default=(1, 1)),
        "pads": AttrSpec(_IS, default=(0, 0, 0, 0)),
        "dilations": AttrSpec(_IS, default=(1, 1)),
        "group": AttrSpec(_I, default=1),
        "auto_pad": AttrSpec(_S, default="NOTSET"),
    }


register_op(OpSchema("Conv", 2, 3, attrs=_conv_attrs()))
register_op(OpSchema("QLinearConv", 8, 9, attrs=_conv_attrs()))
register_op(OpSchema("QuantizeLinear", 2, 3, attrs={
    "axis": AttrSpec(_I, default=1)}))
register_op(OpSchema("DequantizeLinear", 2, 3, attrs={
    "axis": AttrSpec(_I, default=1)}))

register_op(OpSchema("Gemm", 2, 3, attrs={
    "alpha": AttrSpec(_F, default=1.0),
    "beta": AttrSpec(_F, default=1.0),
    "transA": AttrSpec(_I, default=0),
    "transB": AttrSpec(_I, default=0),
}))
register_op(OpSchema("MatMul", 2, 2))

register_op(OpSchema("BatchNormalization", 5, 5, max_outputs=1, attrs={
    "epsilon": AttrSpec(_F, default=1e-5),
    "momentum": AttrSpec(_F, default=0.9),
    "spatial": AttrSpec(_I, default=1),
}))
register_op(OpSchema("LRN", 1, 1, attrs={
    "size": AttrSpec(_I, required=True),
    "alpha": AttrSpec(_F, default=1e-4),
    "beta": AttrSpec(_F, default=0.75),
    "bias": AttrSpec(_F, default=1.0),
}))


def _pool_attrs() -> dict[str, AttrSpec]:
    return {
        "kernel_shape": AttrSpec(_IS, required=True),
        "strides": AttrSpec(_IS),
        "pads": AttrSpec(_IS, default=(0, 0, 0, 0)),
        "dilations": AttrSpec(_IS, default=(1, 1)),
        "ceil_mode": AttrSpec(_I, default=0),
        "auto_pad": AttrSpec(_S, default="NOTSET"),
        "storage_order": AttrSpec(_I, default=0),
        "count_include_pad": AttrSpec(_I, default=0),
    }


register_op(OpSchema("MaxPool", 1, 1, attrs=_pool_attrs()))
register_op(OpSchema("AveragePool", 1, 1, attrs=_pool_attrs()))
register_op(OpSchema("GlobalAveragePool", 1, 1))

for _name in ("Relu", "Sigmoid", "Tanh", "Identity", "Erf", "Exp", "Sqrt",
              "Neg", "Abs", "HardSwish"):
    register_op(OpSchema(_name, 1, 1))
register_op(OpSchema("LeakyRelu", 1, 1, attrs={
    "alpha": AttrSpec(_F, default=0.01)}))
register_op(OpSchema("Elu", 1, 1, attrs={"alpha": AttrSpec(_F, default=1.0)}))
register_op(OpSchema("Clip", 1, 3, attrs={
    "min": AttrSpec(_F), "max": AttrSpec(_F)}))
register_op(OpSchema("Softmax", 1, 1, attrs={
    "axis": AttrSpec(_I, default=-1)}))
register_op(OpSchema("Dropout", 1, 3, max_outputs=2, attrs={
    "ratio": AttrSpec(_F, default=0.5), "seed": AttrSpec(_I)}))

for _name in ("Add", "Sub", "Mul", "Div", "Pow", "Max", "Min"):
    register_op(OpSchema(_name, 2, 2))

register_op(OpSchema("Concat", 1, 64, attrs={
    "axis": AttrSpec(_I, required=True)}))
register_op(OpSchema("Flatten", 1, 1, attrs={"axis": AttrSpec(_I, default=1)}))
register_op(OpSchema("Reshape", 1, 2, attrs={
    "shape": AttrSpec(_IS), "allowzero": AttrSpec(_I, default=0)}))
register_op(OpSchema("Transpose", 1, 1, attrs={"perm": AttrSpec(_IS)}))
register_op(OpSchema("Pad", 1, 3, attrs={
    "mode": AttrSpec(_S, default="constant"),
    "pads": AttrSpec(_IS),
    "value": AttrSpec(_F, default=0.0),
}))
register_op(OpSchema("Squeeze", 1, 2, attrs={"axes": AttrSpec(_IS)}))
register_op(OpSchema("Unsqueeze", 1, 2, attrs={"axes": AttrSpec(_IS)}))
register_op(OpSchema("ReduceMean", 1, 1, attrs={
    "axes": AttrSpec(_IS), "keepdims": AttrSpec(_I, default=1)}))
register_op(OpSchema("Constant", 0, 0, attrs={
    "value": AttrSpec(_T, required=True)}))
register_op(OpSchema("Shape", 1, 1))
register_op(OpSchema("Slice", 1, 5, attrs={
    "starts": AttrSpec(_IS), "ends": AttrSpec(_IS),
    "axes": AttrSpec(_IS), "steps": AttrSpec(_IS)}))
register_op(OpSchema("Gather", 2, 2, attrs={
    "axis": AttrSpec(_I, default=0)}))
register_op(OpSchema("Split", 1, 2, max_outputs=64, attrs={
    "axis": AttrSpec(_I, default=0), "split": AttrSpec(_IS),
    "num_outputs": AttrSpec(_I)}))
register_op(OpSchema("Resize", 1, 4, attrs={
    "mode": AttrSpec(_S, default="nearest"),
    "scales": AttrSpec(AttrKind.FLOATS),
    "coordinate_transformation_mode": AttrSpec(_S, default="asymmetric"),
    "nearest_mode": AttrSpec(_S, default="floor")}))

for _name in ("ReduceSum", "ReduceMax", "ReduceMin"):
    register_op(OpSchema(_name, 1, 1, attrs={
        "axes": AttrSpec(_IS), "keepdims": AttrSpec(_I, default=1),
        "noop_with_empty_axes": AttrSpec(_I, default=0)}))
register_op(OpSchema("ArgMax", 1, 1, attrs={
    "axis": AttrSpec(_I, default=0), "keepdims": AttrSpec(_I, default=1),
    "select_last_index": AttrSpec(_I, default=0)}))
register_op(OpSchema("GlobalMaxPool", 1, 1))
register_op(OpSchema("LayerNormalization", 2, 3, attrs={
    "axis": AttrSpec(_I, default=-1), "epsilon": AttrSpec(_F, default=1e-5),
    "stash_type": AttrSpec(_I, default=1)}))
register_op(OpSchema("GroupNormalization", 3, 3, attrs={
    "num_groups": AttrSpec(_I, required=True),
    "epsilon": AttrSpec(_F, default=1e-5)}))
register_op(OpSchema("Gelu", 1, 1, attrs={
    "approximate": AttrSpec(_S, default="none")}))
