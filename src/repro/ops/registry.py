"""Operator schemas: arity and attribute contracts for every supported op.

Shape inference (:mod:`repro.ir.shape_inference`) defines *what an op
computes*; the schemas here define *what a well-formed node looks like* —
input/output arity and the names, kinds, and defaults of attributes. The
ONNX importer and the session's prepare step validate against them, so a
malformed model fails with "Conv: unexpected attribute 'stride' (did you
mean 'strides'?)" instead of a kernel crash.
"""

from __future__ import annotations

import dataclasses
import difflib
import enum
from collections.abc import Mapping

from repro.errors import AttributeError_, UnsupportedOpError
from repro.ir.node import Node


class AttrKind(enum.Enum):
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    INTS = "ints"
    FLOATS = "floats"
    TENSOR = "tensor"


@dataclasses.dataclass(frozen=True)
class AttrSpec:
    """One attribute's contract."""

    kind: AttrKind
    required: bool = False
    default: object = None


@dataclasses.dataclass(frozen=True)
class OpSchema:
    """Arity and attribute contract for one operator."""

    name: str
    min_inputs: int
    max_inputs: int
    min_outputs: int = 1
    max_outputs: int = 1
    attrs: Mapping[str, AttrSpec] = dataclasses.field(default_factory=dict)
    #: attributes tolerated beyond the declared set (framework-internal)
    allow_internal: tuple[str, ...] = ("activation",)

    def validate(self, node: Node) -> None:
        """Raise on arity or attribute violations."""
        n_in = len(node.inputs)
        if not self.min_inputs <= n_in <= self.max_inputs:
            raise UnsupportedOpError(
                f"{self.name} node {node.name!r}: {n_in} inputs, expected "
                f"{self.min_inputs}..{self.max_inputs}")
        n_out = len(node.outputs)
        if not self.min_outputs <= n_out <= self.max_outputs:
            raise UnsupportedOpError(
                f"{self.name} node {node.name!r}: {n_out} outputs, expected "
                f"{self.min_outputs}..{self.max_outputs}")
        for attr_name, spec in self.attrs.items():
            if spec.required and attr_name not in node.attrs:
                raise AttributeError_(
                    f"{self.name} node {node.name!r}: missing required "
                    f"attribute {attr_name!r}")
        known = set(self.attrs) | set(self.allow_internal)
        for attr_name in node.attrs.keys():
            if attr_name not in known:
                hint = difflib.get_close_matches(attr_name, self.attrs, n=1)
                suffix = f" (did you mean {hint[0]!r}?)" if hint else ""
                raise AttributeError_(
                    f"{self.name} node {node.name!r}: unexpected attribute "
                    f"{attr_name!r}{suffix}")


_SCHEMAS: dict[str, OpSchema] = {}


def register_op(schema: OpSchema) -> OpSchema:
    if schema.name in _SCHEMAS:
        raise UnsupportedOpError(f"op schema {schema.name!r} registered twice")
    _SCHEMAS[schema.name] = schema
    return schema


def get_schema(op_type: str) -> OpSchema:
    try:
        return _SCHEMAS[op_type]
    except KeyError:
        raise UnsupportedOpError(
            f"no schema for op {op_type!r}; supported: {sorted(_SCHEMAS)}"
        ) from None


def has_schema(op_type: str) -> bool:
    return op_type in _SCHEMAS


def schema_names() -> list[str]:
    return sorted(_SCHEMAS)


def validate_node(node: Node) -> None:
    """Validate one node against its schema."""
    get_schema(node.op_type).validate(node)


def validate_graph_nodes(nodes) -> None:
    """Validate every node in an iterable against the schema catalog."""
    for node in nodes:
        validate_node(node)
