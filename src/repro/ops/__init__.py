"""Operator schemas: arity/attribute contracts for the supported op set."""

from repro.ops import catalog  # noqa: F401  (registers the schema catalog)
from repro.ops.registry import (
    AttrKind,
    AttrSpec,
    OpSchema,
    get_schema,
    has_schema,
    register_op,
    schema_names,
    validate_graph_nodes,
    validate_node,
)

__all__ = [
    "AttrKind",
    "AttrSpec",
    "OpSchema",
    "get_schema",
    "has_schema",
    "register_op",
    "schema_names",
    "validate_graph_nodes",
    "validate_node",
]
