"""Table I: qualitative framework comparison.

The paper rates five frameworks on five criteria, 1-3, "based on our
experience". The scores below are transcribed from the paper; the rationale
strings summarise the justification given in Section II so the generated
table is self-documenting. This is the ground truth
``repro.bench.table1`` renders and the test suite locks down.
"""

from __future__ import annotations

import dataclasses

#: Criteria in the paper's row order.
CRITERIA = (
    "Low-level modifications",
    "Model interoperability",
    "Platform Compatibility",
    "Codebase accessibility",
    "Performance (inference time)",
)

#: Frameworks in the paper's column order.
FRAMEWORKS = ("TF-Lite", "PyTorch", "DarkNet", "TVM", "Orpheus")

#: Scores exactly as printed in Table I: {framework: {criterion: 1..3}}.
SCORES: dict[str, dict[str, int]] = {
    "TF-Lite": {
        "Low-level modifications": 1,
        "Model interoperability": 2,
        "Platform Compatibility": 3,
        "Codebase accessibility": 1,
        "Performance (inference time)": 2,
    },
    "PyTorch": {
        "Low-level modifications": 1,
        "Model interoperability": 3,
        "Platform Compatibility": 2,
        "Codebase accessibility": 2,
        "Performance (inference time)": 2,
    },
    "DarkNet": {
        "Low-level modifications": 2,
        "Model interoperability": 1,
        "Platform Compatibility": 3,
        "Codebase accessibility": 3,
        "Performance (inference time)": 1,
    },
    "TVM": {
        "Low-level modifications": 2,
        "Model interoperability": 3,
        "Platform Compatibility": 3,
        "Codebase accessibility": 1,
        "Performance (inference time)": 2,
    },
    "Orpheus": {
        "Low-level modifications": 3,
        "Model interoperability": 3,
        "Platform Compatibility": 3,
        "Codebase accessibility": 3,
        "Performance (inference time)": 3,
    },
}

RATIONALE: dict[str, str] = {
    "TF-Lite": ("lack of clear documentation and limited operator support; "
                "importing models is error prone; Python API or embedding"),
    "PyTorch": ("ideal for prototyping and server-class deployment; high "
                "level API is a barrier to low-level modifications"),
    "DarkNet": ("small accessible C codebase, minimal dependencies; lacks "
                "competitive performance and cannot import models"),
    "TVM": ("competitive performance across platforms; requires a niche "
            "programming model; weak spots (e.g. cheap convolution blocks)"),
    "Orpheus": ("inference-only C++; transparent support for experimenting "
                "with alternative backends; layers as first-class citizens"),
}


@dataclasses.dataclass(frozen=True)
class FeatureScore:
    framework: str
    criterion: str
    score: int

    def __post_init__(self) -> None:
        if not 1 <= self.score <= 3:
            raise ValueError(f"scores are 1-3, got {self.score}")


def all_scores() -> list[FeatureScore]:
    """Flat list of every (framework, criterion, score) triple."""
    return [
        FeatureScore(framework, criterion, SCORES[framework][criterion])
        for framework in FRAMEWORKS
        for criterion in CRITERIA
    ]


def totals() -> dict[str, int]:
    """Column sums (not in the paper, but handy for ranking)."""
    return {
        framework: sum(SCORES[framework][criterion] for criterion in CRITERIA)
        for framework in FRAMEWORKS
    }
