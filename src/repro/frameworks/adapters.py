"""The five framework adapters of the paper's evaluation.

Each simulation encodes the algorithmic behaviour the paper attributes to
the real framework (Section III); see DESIGN.md for the substitution table.
"""

from __future__ import annotations

from repro.backends.backend import Backend
from repro.errors import FrameworkUnavailableError
from repro.frameworks.base import register_adapter
from repro.frameworks.session_adapter import SessionAdapter, SessionModel
from repro.models import zoo
from repro.runtime.session import InferenceSession

# -- Orpheus: GEMM convolution, fused graph, BLAS ---------------------------------

ORPHEUS_ADAPTER = register_adapter(SessionAdapter(
    name="orpheus",
    display_name="Orpheus",
    backend=Backend(
        name="orpheus-eval",
        description="paper-default Orpheus configuration",
        preferences={"Conv": ("direct_dw", "im2col")},
        gemm="blas",
    ),
    optimize=True,
))

# -- TVM: auto-tuned spatial-pack / direct schedules, compiled (fused) graph --------
#
# TVM generates its own convolution schedules per layer shape (AutoTVM) and
# does not link a vendor BLAS, so its candidate set is the non-GEMM
# family: spatial pack (its Arm CPU default), direct, and Winograd. Tuning
# picks the fastest per layer — which beats one big im2col+BLAS GEMM on
# small tensors and loses to it on large ones, the crossover the paper
# reports between TVM and Orpheus.


class TVMAdapter(SessionAdapter):
    """TVM simulation: per-layer autotuning over non-BLAS schedules."""

    _CANDIDATES = {"Conv": ("spatial_pack", "direct", "winograd", "direct_dw")}

    def __init__(self) -> None:
        super().__init__(
            name="tvm",
            display_name="TVM (sim)",
            backend=Backend(
                name="tvm-sim",
                description="auto-tuned spatial-pack/direct schedules",
                preferences={"Conv": ("direct_dw", "spatial_pack")},
                gemm="blas",
            ),
            optimize=True,
        )

    def prepare(self, model_name: str, batch: int = 1,
                image_size: int | None = None, threads: int = 1) -> SessionModel:
        # Imported here: autotune sits above the backends layer.
        from repro.passes import default_pipeline
        from repro.runtime.autotune import autotune

        graph = zoo.build(model_name, batch=batch, image_size=image_size)
        simplified = default_pipeline().run(graph)  # "compile" the graph
        overrides = autotune(
            simplified, self._CANDIDATES, threads=threads, repeats=2)
        tuned = self.backend.with_overrides(overrides)
        session = InferenceSession(
            simplified, backend=tuned, threads=threads, optimize=False)
        return SessionModel(session)


TVM_ADAPTER = register_adapter(TVMAdapter())

# -- PyTorch: GEMM convolution, eager graph, inefficient depthwise ------------------
#
# "PyTorch also uses GEMM ... although its times are worse than Orpheus":
# eager mode executes the exported graph as-is (no BN folding, no activation
# fusion -> optimize=False), pays an extra input copy per conv, routes
# depthwise convolutions through a per-channel GEMM loop — the pathology
# behind its MobileNetV1 time in Figure 2 — and pays the eager-mode
# dispatcher cost on every operator (Python binding + dispatch, tens of
# microseconds per op; modelled as a per-node constant since our shared
# executor itself has no such per-framework cost).

_EAGER_DISPATCH_S_PER_NODE = 40e-6


class PyTorchAdapter(SessionAdapter):
    """PyTorch simulation: eager graph + per-op dispatch overhead."""

    def __init__(self) -> None:
        super().__init__(
            name="pytorch",
            display_name="PyTorch (sim)",
            backend=Backend(
                name="pytorch-sim",
                description="eager GEMM convolution with per-channel depthwise",
                preferences={"Conv": ("perchannel_gemm_dw", "im2col_loops")},
                gemm="blas",
                include_experimental=True,
            ),
            optimize=False,
        )

    def prepare(self, model_name: str, batch: int = 1,
                image_size: int | None = None, threads: int = 1,
                engine_cache=None) -> SessionModel:
        prepared = super().prepare(
            model_name, batch=batch, image_size=image_size, threads=threads,
            engine_cache=engine_cache)
        node_count = len(prepared.session.graph.nodes)
        prepared.per_run_overhead_s = _EAGER_DISPATCH_S_PER_NODE * node_count
        return prepared


PYTORCH_ADAPTER = register_adapter(PyTorchAdapter())


# -- DarkNet: C-style im2col + hand-written GEMM, ResNets only ----------------------


class DarknetAdapter(SessionAdapter):
    """DarkNet simulation.

    The paper: "only the ResNet models were available and had inference
    time measured in seconds". DarkNet cannot import third-party models,
    so everything but the ResNets raises; its hand-written GEMM (no vendor
    BLAS) is simulated by the blocked pure-numpy GEMM primitive.
    """

    _AVAILABLE = ("resnet18", "resnet50")

    def __init__(self) -> None:
        super().__init__(
            name="darknet",
            display_name="DarkNet (sim)",
            backend=Backend(
                name="darknet-sim",
                description="loop-built im2col + blocked non-BLAS GEMM",
                preferences={"Conv": ("direct_dw", "im2col_loops")},
                gemm="blocked",
            ),
            optimize=False,
        )

    def prepare(self, model_name: str, batch: int = 1,
                image_size: int | None = None, threads: int = 1,
                engine_cache=None) -> SessionModel:
        if model_name not in self._AVAILABLE:
            raise FrameworkUnavailableError(
                f"DarkNet: model {model_name!r} is not available "
                f"(only the ResNet models ship with the framework)")
        return super().prepare(
            model_name, batch=batch, image_size=image_size, threads=threads,
            engine_cache=engine_cache)


DARKNET_ADAPTER = register_adapter(DarknetAdapter())


# -- TF-Lite: cannot pin a single thread ---------------------------------------------


class TFLiteAdapter(SessionAdapter):
    """TF-Lite simulation.

    The paper: "the Python API always selects the maximum number of
    threads, so we could not select one" — single-thread measurements are
    impossible, and the ResNet models failed to import. Multi-thread
    requests do run (on the default Orpheus kernels), matching "all the
    models excepting ResNets were available".
    """

    _UNIMPORTABLE = ("resnet18", "resnet50")

    def __init__(self) -> None:
        super().__init__(
            name="tflite",
            display_name="TF-Lite (sim)",
            backend=Backend(
                name="tflite-sim",
                description="max-threads-only runtime",
                preferences={"Conv": ("direct_dw", "im2col")},
                gemm="blas",
            ),
            optimize=True,
        )

    def prepare(self, model_name: str, batch: int = 1,
                image_size: int | None = None, threads: int = 1,
                engine_cache=None) -> SessionModel:
        if model_name in self._UNIMPORTABLE:
            raise FrameworkUnavailableError(
                f"TF-Lite: importing {model_name!r} failed "
                "(unsupported operations in the converted model)")
        if threads == 1:
            raise FrameworkUnavailableError(
                "TF-Lite: the Python API always selects the maximum number "
                "of threads; a single-thread run cannot be requested")
        return super().prepare(
            model_name, batch=batch, image_size=image_size, threads=threads,
            engine_cache=engine_cache)


TFLITE_ADAPTER = register_adapter(TFLiteAdapter())

# -- Orpheus int8: post-training-quantized execution --------------------------------
#
# Not a paper framework but a first-class Figure-2 competitor: the same
# runtime with the auto-quantizing ``int8`` backend (calibration + QDQ
# transform at prepare time, uint8 regions with fused requantization at
# run time). Sharing :class:`SessionAdapter` means it inherits the engine
# cache, the timing protocol, and the failure boundary unchanged.


def _int8_backend() -> Backend:
    from repro.backends import get_backend
    return get_backend("int8")


class Int8Adapter(SessionAdapter):
    """Quantized Orpheus: auto-quantized graphs on the int8 backend."""

    def __init__(self) -> None:
        super().__init__(
            name="int8",
            display_name="Orpheus int8",
            backend=_int8_backend(),
            optimize=True,
        )


INT8_ADAPTER = register_adapter(Int8Adapter())

#: Adapter evaluation order for the Figure 2 harness.
EVALUATION_ORDER = ("orpheus", "tvm", "pytorch", "darknet", "tflite", "int8")
