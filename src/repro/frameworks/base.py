"""Framework adapter interface.

The paper's evaluation compares Orpheus against TF-Lite, PyTorch, DarkNet
and TVM on the same models. We cannot ship those frameworks (and the paper's
own HiKey 970 numbers are not reproducible without the board), so each
comparator is *simulated*: an adapter that runs the same model through this
runtime but configured with the algorithmic choices and limitations the
paper attributes to that framework (see DESIGN.md, "Substitutions").

Adapters share one interface so the benchmark harness can iterate them
uniformly; unavailability (DarkNet's missing models, TF-Lite's thread
pinning) is expressed by raising
:class:`~repro.errors.FrameworkUnavailableError` — exactly the situations
the paper reports as exclusions from Figure 2.
"""

from __future__ import annotations

import abc
import statistics

import numpy as np

from repro.errors import FrameworkUnavailableError
from repro.models import zoo


class FrameworkAdapter(abc.ABC):
    """One framework under evaluation."""

    #: registry key, e.g. ``"tvm"``
    name: str = ""
    #: label used in tables, e.g. ``"TVM (sim)"``
    display_name: str = ""

    @abc.abstractmethod
    def prepare(self, model_name: str, batch: int = 1,
                image_size: int | None = None, threads: int = 1) -> "PreparedModel":
        """Load + ready a zoo model for repeated inference.

        Raises:
            FrameworkUnavailableError: the framework cannot run this
                workload (missing model, unsupported thread count, ...).
        """

    def measure(
        self,
        model_name: str,
        batch: int = 1,
        image_size: int | None = None,
        threads: int = 1,
        repeats: int = 3,
        warmup: int = 1,
        seed: int = 0,
    ) -> "Measurement":
        """Median-of-``repeats`` inference time for one model."""
        prepared = self.prepare(
            model_name, batch=batch, image_size=image_size, threads=threads)
        shape = zoo.input_shape(model_name, batch=batch)
        if image_size is not None:
            shape = (shape[0], shape[1], image_size, image_size)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(shape).astype(np.float32)
        times = prepared.time(x, repeats=repeats, warmup=warmup)
        return Measurement(
            framework=self.name, model=model_name, times=tuple(times))


class PreparedModel(abc.ABC):
    """A model readied by an adapter, exposing timed execution."""

    @abc.abstractmethod
    def run(self, x: np.ndarray) -> np.ndarray:
        """Single inference; returns the output tensor."""

    @abc.abstractmethod
    def time(self, x: np.ndarray, repeats: int, warmup: int) -> list[float]:
        """Wall-clock seconds per run."""


class Measurement:
    """Timing result for one (framework, model) cell of Figure 2."""

    def __init__(self, framework: str, model: str, times: tuple[float, ...]) -> None:
        if not times:
            raise ValueError("a measurement needs at least one sample")
        self.framework = framework
        self.model = model
        self.times = times

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def best(self) -> float:
        return min(self.times)

    def __repr__(self) -> str:
        return (f"Measurement({self.framework}/{self.model}: "
                f"{self.median * 1e3:.1f} ms median of {len(self.times)})")


_ADAPTERS: dict[str, FrameworkAdapter] = {}


def register_adapter(adapter: FrameworkAdapter) -> FrameworkAdapter:
    if adapter.name in _ADAPTERS:
        raise FrameworkUnavailableError(
            f"adapter {adapter.name!r} already registered")
    _ADAPTERS[adapter.name] = adapter
    return adapter


def get_adapter(name: str) -> FrameworkAdapter:
    try:
        return _ADAPTERS[name]
    except KeyError:
        raise FrameworkUnavailableError(
            f"unknown framework {name!r}; registered: {sorted(_ADAPTERS)}"
        ) from None


def list_adapters() -> list[FrameworkAdapter]:
    return [_ADAPTERS[name] for name in sorted(_ADAPTERS)]
