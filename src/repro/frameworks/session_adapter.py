"""Shared adapter plumbing for frameworks simulated on this runtime."""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.backend import Backend
from repro.frameworks.base import FrameworkAdapter, PreparedModel
from repro.models import zoo
from repro.runtime.session import InferenceSession

if TYPE_CHECKING:
    from repro.engine.cache import EngineCache


class SessionModel(PreparedModel):
    """A `PreparedModel` backed by an `InferenceSession`.

    ``per_run_overhead_s`` models constant framework dispatch cost that our
    shared executor cannot express (e.g. a Python-API boundary crossing);
    the built-in simulations keep it at zero — differences come from the
    kernels — but third-party adapters may use it.
    """

    def __init__(self, session: InferenceSession,
                 per_run_overhead_s: float = 0.0) -> None:
        self.session = session
        self.per_run_overhead_s = per_run_overhead_s

    def run(self, x: np.ndarray) -> np.ndarray:
        outputs = self.session.run({"input": x})
        return next(iter(outputs.values()))

    def time(self, x: np.ndarray, repeats: int, warmup: int) -> list[float]:
        feed = {"input": x}
        for _ in range(warmup):
            self.session.run(feed)
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            self.session.run(feed)
            elapsed = time.perf_counter() - started
            times.append(elapsed + self.per_run_overhead_s)
        return times


class SessionAdapter(FrameworkAdapter):
    """Adapter that runs zoo models through a configured backend."""

    def __init__(
        self,
        name: str,
        display_name: str,
        backend: Backend,
        optimize: bool = True,
    ) -> None:
        self.name = name
        self.display_name = display_name
        self.backend = backend
        self.optimize = optimize

    def prepare(self, model_name: str, batch: int = 1,
                image_size: int | None = None, threads: int = 1,
                engine_cache: "EngineCache | None" = None) -> SessionModel:
        graph = zoo.build(model_name, batch=batch, image_size=image_size)
        if engine_cache is not None:
            # Warm-start from (and on miss, populate) the engine cache.
            session, _ = engine_cache.session(
                graph, model=model_name, backend=self.backend,
                threads=threads, optimize=self.optimize,
                batch=batch, image_size=image_size)
        else:
            session = InferenceSession(
                graph, backend=self.backend, threads=threads,
                optimize=self.optimize)
        return SessionModel(session)
