"""Framework adapters: Orpheus + the four simulated comparators."""

from repro.frameworks import features
from repro.frameworks.adapters import (
    DARKNET_ADAPTER,
    EVALUATION_ORDER,
    ORPHEUS_ADAPTER,
    PYTORCH_ADAPTER,
    TFLITE_ADAPTER,
    TVM_ADAPTER,
)
from repro.frameworks.base import (
    FrameworkAdapter,
    Measurement,
    PreparedModel,
    get_adapter,
    list_adapters,
    register_adapter,
)
from repro.frameworks.session_adapter import SessionAdapter, SessionModel

__all__ = [
    "DARKNET_ADAPTER",
    "EVALUATION_ORDER",
    "FrameworkAdapter",
    "Measurement",
    "ORPHEUS_ADAPTER",
    "PYTORCH_ADAPTER",
    "PreparedModel",
    "SessionAdapter",
    "SessionModel",
    "TFLITE_ADAPTER",
    "TVM_ADAPTER",
    "features",
    "get_adapter",
    "list_adapters",
    "register_adapter",
]
