"""Orpheus: a deep learning framework for easy deployment and evaluation of
edge inference.

Python reproduction of the ISPASS 2020 paper by Gibson & Cano
(arXiv:2007.13648). The public API mirrors the paper's design (Figure 1):

* models come in through the ONNX importer (:mod:`repro.onnx`) or the model
  zoo (:mod:`repro.models`);
* the computation graph is simplified (:mod:`repro.passes`);
* layers are executed by runtime-selectable kernel implementations
  (:mod:`repro.kernels`) chosen by a backend (:mod:`repro.backends`);
* :class:`~repro.runtime.session.InferenceSession` ties it together, and
  :mod:`repro.bench` reproduces the paper's experiments.
"""

from repro.backends import Backend, get_backend, list_backends, register_backend
from repro.config import RuntimeConfig, default_config, get_default_config
from repro.errors import OrpheusError
from repro.ir import Graph, GraphBuilder, Node, ValueInfo
from repro.quant import qops as _qops  # noqa: F401  (register quantized ops)
from repro.runtime import InferenceSession
from repro.tensor import DType, Tensor

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "DType",
    "Graph",
    "GraphBuilder",
    "InferenceSession",
    "Node",
    "OrpheusError",
    "RuntimeConfig",
    "Tensor",
    "ValueInfo",
    "__version__",
    "default_config",
    "get_backend",
    "get_default_config",
    "list_backends",
    "register_backend",
]
